// Unit and end-to-end tests for the congestion-control zoo
// (tcp/congestion.hpp): the Cca selector plumbing, the window arithmetic
// of each stack driven hook by hook, and packet-level crossover behaviour
// on a lossy high-BDP path.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fixtures.hpp"
#include "flow/tcp_model.hpp"
#include "tcp/congestion.hpp"
#include "tcp/options.hpp"

namespace lsl::tcp {
namespace {

constexpr std::uint64_t kMss = 1460;

TcpOptions options_for(Cca cca) { return TcpOptions{}.with_cca(cca); }

// ---------------------------------------------------------------------------
// Selector plumbing

TEST(CcaSelectorTest, ParseRoundTrips) {
  for (const Cca cca :
       {Cca::kReno, Cca::kNewReno, Cca::kCubic, Cca::kBbr}) {
    Cca parsed = Cca::kReno;
    ASSERT_TRUE(flow::parse_cca(flow::to_string(cca), parsed));
    EXPECT_EQ(parsed, cca);
  }
  Cca out;
  EXPECT_FALSE(flow::parse_cca("tahoe", out));
  EXPECT_FALSE(flow::parse_cca("", out));
  EXPECT_FALSE(flow::parse_cca("CUBIC", out));  // names are lowercase
}

TEST(CcaSelectorTest, FactoryBuildsRequestedStack) {
  for (const Cca cca :
       {Cca::kReno, Cca::kNewReno, Cca::kCubic, Cca::kBbr}) {
    const auto cc = make_congestion_control(options_for(cca));
    EXPECT_EQ(cc->kind(), cca);
  }
  // The default options stay on the historical NewReno baseline.
  EXPECT_EQ(make_congestion_control(TcpOptions{})->kind(), Cca::kNewReno);
}

// ---------------------------------------------------------------------------
// Reno / NewReno

TEST(RenoFamilyTest, PartialAckPolicyIsTheOnlyDifference) {
  RenoCc reno(options_for(Cca::kReno));
  NewRenoCc newreno(options_for(Cca::kNewReno));
  EXPECT_FALSE(reno.partial_ack_keeps_recovery());
  EXPECT_TRUE(newreno.partial_ack_keeps_recovery());
}

TEST(RenoFamilyTest, WindowArithmeticMatchesSeedBehaviour) {
  NewRenoCc cc(options_for(Cca::kNewReno));
  EXPECT_EQ(cc.cwnd(), 2 * kMss);  // initial_cwnd_segments = 2

  // Slow start: byte-counted, capped at one MSS per ACK.
  cc.on_ack(kMss, 10 * kMss, SimTime::zero(), SimTime::zero());
  EXPECT_EQ(cc.cwnd(), 3 * kMss);
  cc.on_ack(4 * kMss, 10 * kMss, SimTime::zero(), SimTime::zero());
  EXPECT_EQ(cc.cwnd(), 4 * kMss);

  // Loss: ssthresh = flight/2, cwnd inflated by the three dup ACKs.
  cc.on_enter_recovery(20 * kMss, SimTime::zero());
  EXPECT_EQ(cc.ssthresh(), 10 * kMss);
  EXPECT_EQ(cc.cwnd(), 13 * kMss);
  cc.on_recovery_dup_ack();
  EXPECT_EQ(cc.cwnd(), 14 * kMss);
  cc.on_recovery_exit(SimTime::zero());
  EXPECT_EQ(cc.cwnd(), 10 * kMss);

  // Congestion avoidance: integer mss*mss/cwnd growth per ACK.
  cc.on_ack(kMss, 10 * kMss, SimTime::zero(), SimTime::zero());
  EXPECT_EQ(cc.cwnd(), 10 * kMss + kMss * kMss / (10 * kMss));

  // RTO collapses to one segment.
  cc.on_rto(8 * kMss, SimTime::zero());
  EXPECT_EQ(cc.cwnd(), kMss);
  EXPECT_EQ(cc.ssthresh(), 4 * kMss);
}

// ---------------------------------------------------------------------------
// CUBIC

/// Slow-starts a CubicCc up to `segments` (ssthresh starts effectively
/// infinite, so each full-MSS ACK adds one segment).
void grow_to(CubicCc& cc, double segments) {
  while (cc.cwnd_segments() < segments) {
    cc.on_ack(kMss, 100 * kMss, SimTime::zero(), SimTime::milliseconds(100));
  }
}

TEST(CubicTest, LossResponseSetsWmaxAndBeta) {
  CubicCc cc(options_for(Cca::kCubic));
  grow_to(cc, 100.0);
  ASSERT_DOUBLE_EQ(cc.cwnd_segments(), 100.0);

  cc.on_enter_recovery(100 * kMss, SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(cc.w_max_segments(), 100.0);
  EXPECT_DOUBLE_EQ(cc.cwnd_segments(), 70.0);  // beta = 0.7
  EXPECT_EQ(cc.ssthresh(), 70 * kMss);
  EXPECT_EQ(cc.cwnd(), 70 * kMss + 3 * kMss);  // dup-ACK inflation

  cc.on_recovery_exit(SimTime::seconds(1));
  EXPECT_EQ(cc.cwnd(), 70 * kMss);
}

TEST(CubicTest, EpochAnchorsTheRfc8312Curve) {
  CubicCc cc(options_for(Cca::kCubic));
  grow_to(cc, 100.0);
  cc.on_enter_recovery(100 * kMss, SimTime::seconds(1));
  cc.on_recovery_exit(SimTime::seconds(1));

  // First congestion-avoidance ACK starts the epoch: K = cbrt(w_max *
  // (1 - beta) / C), and W(0) = w_max - C*K^3 = beta * w_max continues
  // the window exactly where the reduction left it.
  cc.on_ack(kMss, 70 * kMss, SimTime::seconds(2),
            SimTime::milliseconds(100));
  EXPECT_NEAR(cc.k_seconds(), std::cbrt(100.0 * 0.3 / 0.4), 1e-12);
  EXPECT_FALSE(cc.in_tcp_friendly_region());
  EXPECT_GT(cc.cwnd_segments(), 70.0);  // concave climb has begun
  const double after_one_ack = cc.cwnd_segments();

  // Later in the epoch the curve has pulled the target well above w_max's
  // beta floor; growth accelerates toward w_max.
  cc.on_ack(kMss, 70 * kMss, SimTime::seconds(4),
            SimTime::milliseconds(100));
  EXPECT_GT(cc.cwnd_segments(), after_one_ack);
}

TEST(CubicTest, FastConvergenceShrinksWmaxOnBackToBackLoss) {
  CubicCc cc(options_for(Cca::kCubic));
  grow_to(cc, 100.0);
  cc.on_enter_recovery(100 * kMss, SimTime::seconds(1));
  cc.on_recovery_exit(SimTime::seconds(1));
  const double cwnd_seg = cc.cwnd_segments();
  ASSERT_LT(cwnd_seg, cc.w_max_segments());

  // Losing again before regaining w_max releases share to the new flow:
  // w_max = cwnd * (1 + beta) / 2 < cwnd's old peak.
  cc.on_enter_recovery(70 * kMss, SimTime::seconds(2));
  EXPECT_NEAR(cc.w_max_segments(), cwnd_seg * (1.0 + 0.7) / 2.0, 1e-9);
  EXPECT_LT(cc.w_max_segments(), 100.0);
}

TEST(CubicTest, TcpFriendlyRegionFloorsAtAimdEstimate) {
  CubicCc cc(options_for(Cca::kCubic));
  grow_to(cc, 10.0);
  cc.on_enter_recovery(10 * kMss, SimTime::seconds(1));
  cc.on_recovery_exit(SimTime::seconds(1));

  // Small w_max + short RTT: the AIMD estimate W_est = beta*w_max +
  // 3(1-beta)/(1+beta) * t/RTT races ahead of the flat cubic curve, so
  // CUBIC takes the Reno-equivalent window instead.
  cc.on_ack(kMss, 7 * kMss, SimTime::seconds(100),
            SimTime::milliseconds(10));
  cc.on_ack(kMss, 7 * kMss, SimTime::seconds(105),
            SimTime::milliseconds(10));
  EXPECT_TRUE(cc.in_tcp_friendly_region());
  const double w_est = 10.0 * 0.7 + (3.0 * 0.3 / 1.7) * (5.0 / 0.01);
  EXPECT_NEAR(cc.cwnd_segments(), w_est, 1.0);
}

TEST(CubicTest, RtoCollapsesToOneSegment) {
  CubicCc cc(options_for(Cca::kCubic));
  grow_to(cc, 50.0);
  cc.on_rto(50 * kMss, SimTime::seconds(1));
  EXPECT_EQ(cc.cwnd(), kMss);
  EXPECT_DOUBLE_EQ(cc.w_max_segments(), 50.0);
  EXPECT_EQ(cc.ssthresh(), 35 * kMss);  // beta * 50
}

// ---------------------------------------------------------------------------
// BBR

TEST(BbrTest, PhaseMachineStartupDrainProbeBw) {
  BbrCc cc(options_for(Cca::kBbr));
  const SimTime rtt = SimTime::milliseconds(50);
  cc.on_rtt_sample(rtt, SimTime::zero());
  EXPECT_EQ(cc.min_rtt(), rtt);
  EXPECT_EQ(cc.phase(), BbrCc::Phase::kStartup);

  // Two ACKs one RTT apart close the first delivery-rate round:
  // 29200 bytes over 50 ms = 4.672 Mbit/s.
  cc.on_ack(10 * kMss, 20 * kMss, SimTime::zero(), rtt);
  cc.on_ack(10 * kMss, 20 * kMss, rtt, rtt);
  EXPECT_DOUBLE_EQ(cc.btl_bw_bps(), 20.0 * kMss * 8.0 / 0.05);
  const std::uint64_t bdp =
      static_cast<std::uint64_t>(cc.btl_bw_bps() / 8.0 * 0.05);
  // Startup holds cwnd at kStartupGain * BDP.
  EXPECT_EQ(cc.cwnd(), static_cast<std::uint64_t>(
                           2.885 * static_cast<double>(bdp)));

  // Three consecutive rounds without 25% growth exit startup into drain.
  cc.on_ack(10 * kMss, 20 * kMss, SimTime::milliseconds(100), rtt);
  cc.on_ack(10 * kMss, 20 * kMss, SimTime::milliseconds(150), rtt);
  EXPECT_EQ(cc.phase(), BbrCc::Phase::kStartup);
  cc.on_ack(10 * kMss, 20 * kMss, SimTime::milliseconds(200), rtt);
  EXPECT_EQ(cc.phase(), BbrCc::Phase::kDrain);
  EXPECT_EQ(cc.cwnd(), bdp);  // drain gain = 1.0

  // Drain ends once flight has sunk to the BDP; probe-bw starts its gain
  // cycle on the probing step (1.25 * kCwndGain).
  cc.on_ack(10 * kMss, 10 * kMss, SimTime::milliseconds(250), rtt);
  EXPECT_EQ(cc.phase(), BbrCc::Phase::kProbeBw);
  EXPECT_EQ(cc.cwnd(), static_cast<std::uint64_t>(
                           2.0 * 1.25 * static_cast<double>(bdp)));
}

TEST(BbrTest, LossLeavesTheWindowAlone) {
  BbrCc cc(options_for(Cca::kBbr));
  const SimTime rtt = SimTime::milliseconds(50);
  cc.on_rtt_sample(rtt, SimTime::zero());
  cc.on_ack(10 * kMss, 20 * kMss, SimTime::zero(), rtt);
  cc.on_ack(10 * kMss, 20 * kMss, rtt, rtt);
  const std::uint64_t before = cc.cwnd();
  ASSERT_GT(before, 4 * kMss);

  cc.on_enter_recovery(20 * kMss, rtt);
  cc.on_recovery_dup_ack();
  cc.on_partial_ack(kMss);
  cc.on_recovery_exit(rtt);
  EXPECT_EQ(cc.cwnd(), before);

  // Only the RTO's go-back-N restart collapses the window; the pipe model
  // (btl_bw, min_rtt) survives for the next round to re-inflate from.
  cc.on_rto(20 * kMss, rtt);
  EXPECT_EQ(cc.cwnd(), kMss);
  EXPECT_GT(cc.btl_bw_bps(), 0.0);
}

TEST(BbrTest, MinRttWindowExpiresStaleSamples) {
  BbrCc cc(options_for(Cca::kBbr));
  cc.on_rtt_sample(SimTime::milliseconds(50), SimTime::zero());
  cc.on_rtt_sample(SimTime::milliseconds(80), SimTime::seconds(1));
  EXPECT_EQ(cc.min_rtt(), SimTime::milliseconds(50));  // min filter
  // Past the 10 s window the old floor is stale (path may have changed).
  cc.on_rtt_sample(SimTime::milliseconds(80), SimTime::seconds(12));
  EXPECT_EQ(cc.min_rtt(), SimTime::milliseconds(80));
}

// ---------------------------------------------------------------------------
// End to end: packet-level crossover on a lossy high-BDP path

testing::TransferResult run_high_bdp(Cca cca, std::uint64_t bytes) {
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(2000);
  link.propagation_delay = SimTime::milliseconds(80);  // RTT 160 ms
  link.queue_capacity_bytes = mib(8);
  link.loss_rate = 1e-4;
  testing::TwoNodeNet net(link, /*seed=*/7);
  const TcpOptions opts = TcpOptions{}.with_buffers(mib(8)).with_cca(cca);
  return testing::run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                    bytes, opts);
}

TEST(CcaCrossoverTest, CubicBeatsRenoOnLossyHighBdpPath) {
  // RTT 160 ms, loss 1e-4: past the crossover RTT (~57 ms at this loss)
  // where CUBIC's RTT^(-1/4) response function overtakes Mathis.
  const auto reno = run_high_bdp(Cca::kReno, mib(128));
  const auto cubic = run_high_bdp(Cca::kCubic, mib(128));
  ASSERT_TRUE(reno.completed);
  ASSERT_TRUE(cubic.completed);
  EXPECT_GT(cubic.goodput.megabits_per_second(),
            reno.goodput.megabits_per_second());
}

TEST(CcaCrossoverTest, BbrIgnoresRandomLossEntirely) {
  // Loss-agnostic BBR should run near the window limit (8 MiB / 160 ms
  // = ~400 Mbit/s) where every AIMD stack is pinned far below it. 256 MiB
  // so both stacks are past their transients (CUBIC's first loss cycle
  // lands ~15 MB in; BBR's startup converges within a few rounds).
  const auto cubic = run_high_bdp(Cca::kCubic, mib(256));
  const auto bbr = run_high_bdp(Cca::kBbr, mib(256));
  ASSERT_TRUE(bbr.completed);
  EXPECT_GT(bbr.goodput.megabits_per_second(),
            2.0 * cubic.goodput.megabits_per_second());
}

}  // namespace
}  // namespace lsl::tcp
