// Small-surface unit coverage: behaviours not exercised by the larger
// suites (stats edge cases, route-table semantics, link accounting, depot
// stat bookkeeping identities).
#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "lsl/route_table.hpp"
#include "sched/scheduler.hpp"
#include "net/link.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;

TEST(CoverageTest, RouteTableSemantics) {
  session::RouteTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.next_hop(5).has_value());
  table.set(5, 2);
  table.set(7, 2);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(*table.next_hop(5), 2u);
  table.set(5, 3);  // last write wins
  EXPECT_EQ(*table.next_hop(5), 3u);
  EXPECT_EQ(table.size(), 2u);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.next_hop(5).has_value());
}

TEST(CoverageTest, OnlineStatsSingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(CoverageTest, NegativeTimeRendering) {
  EXPECT_EQ((SimTime::milliseconds(-5) * 2).to_milliseconds(), -10.0);
  // str() renders magnitudes sensibly for negative durations too.
  EXPECT_NE(SimTime::milliseconds(-5).str().find("-"), std::string::npos);
}

TEST(CoverageTest, BandwidthRenderingAcrossScales) {
  EXPECT_EQ(Bandwidth::gbps(2).str(), "2.00Gbit/s");
  EXPECT_EQ(Bandwidth::mbps(1.5).str(), "1.50Mbit/s");
  EXPECT_EQ(Bandwidth::kbps(9).str(), "9.00kbit/s");
  EXPECT_EQ(Bandwidth::bps(12).str(), "12.00bit/s");
}

TEST(CoverageTest, LinkQueueHighWaterMark) {
  sim::Simulator sim;
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(1);  // slow: the queue backs up
  cfg.queue_capacity_bytes = 10'000;
  net::Link link(sim, cfg, Rng(1));
  link.set_deliver([](net::Packet) {});
  for (int i = 0; i < 5; ++i) {
    net::Packet p;
    p.src = 0;
    p.dst = 1;
    p.payload_bytes = 1460;
    link.enqueue(std::move(p));
  }
  // 5 x 1500B offered; 10 KB capacity holds 6 -- all queued.
  EXPECT_EQ(link.stats().max_queue_bytes, 5u * 1500u);
  sim.run();
  EXPECT_EQ(link.stats().packets_sent, 5u);
  // Mean standing queue: packets arrived back-to-back, depths 0..4 x 1500.
  EXPECT_NEAR(link.stats().mean_queue_bytes(), (0 + 1 + 2 + 3 + 4) * 1500 / 5.0,
              1.0);
}

TEST(CoverageTest, DepotStatsIdentityAfterMixedWorkload) {
  // accepted == relayed + delivered + stored for a workload with all three
  // roles (no failures in this clean network).
  exp::SimHarness h(91);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(200);
  link.propagation_delay = 3_ms;
  h.add_link(a, d, link);
  h.add_link(d, b, link);
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  h.deploy(cfg);

  const auto opts = tcp::TcpOptions{}.with_buffers(mib(1));
  // Relay through d.
  session::TransferSpec relay;
  relay.dst = b;
  relay.via = {d};
  relay.payload_bytes = kib(300);
  relay.tcp = opts;
  (void)h.run_transfer(a, relay);
  // Deliver at d.
  session::TransferSpec deliver;
  deliver.dst = d;
  deliver.payload_bytes = kib(200);
  deliver.tcp = opts;
  (void)h.run_transfer(a, deliver);
  // Store at d (async).
  session::TransferSpec store;
  store.dst = b;
  store.via = {d};
  store.async_session = true;
  store.payload_bytes = kib(100);
  store.tcp = opts;
  session::LslSource::start(h.stack(a), store, h.rng());
  h.simulator().run(h.simulator().now() + 30_s);

  const auto& s = h.depot(d).stats();
  EXPECT_EQ(s.sessions_accepted,
            s.sessions_relayed + s.sessions_delivered + s.sessions_stored);
  EXPECT_EQ(s.sessions_refused, 0u);
  EXPECT_EQ(s.sessions_relayed, 1u);
  EXPECT_EQ(s.sessions_delivered, 1u);
  EXPECT_EQ(s.sessions_stored, 1u);
}

TEST(CoverageTest, FractionScheduledZeroOnUniformMatrix) {
  // Perfectly uniform costs: no relay can beat a direct edge, so nothing
  // is scheduled at any positive epsilon.
  sched::CostMatrix m(6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i != j) {
        m.set_cost(i, j, 1.0);
      }
    }
  }
  const sched::Scheduler scheduler(std::move(m), {.epsilon = 0.1});
  EXPECT_DOUBLE_EQ(scheduler.fraction_scheduled(), 0.0);
}

TEST(CoverageTest, TransferToUnreachableHostFailsCleanly) {
  exp::SimHarness h(92);
  const auto a = h.add_host("a");
  const auto b = h.add_host("b");
  h.add_host("island");  // node 2: no links at all
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(100);
  link.propagation_delay = 3_ms;
  h.add_link(a, b, link);
  h.deploy([](net::NodeId) {
    session::DepotConfig cfg;
    cfg.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
    return cfg;
  });
  session::TransferSpec spec;
  spec.dst = 2;
  spec.payload_bytes = kib(64);
  spec.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
  const auto r = h.run_transfer(a, spec, h.simulator().now() + 120_s);
  EXPECT_FALSE(r.completed);
  // The SYN retry budget expires and the connection reaps.
  h.simulator().run(h.simulator().now() + 300_s);
  EXPECT_EQ(h.stack(a).open_connections(), 0u);
}

}  // namespace
}  // namespace lsl
