#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "testbed/cross_traffic.hpp"

namespace lsl::testbed {
namespace {

using namespace lsl::time_literals;
using exp::SimHarness;

std::unique_ptr<SimHarness> make_shared_bottleneck(std::uint64_t seed) {
  // Four hosts behind one 50 Mbit/s shared core link: a--r1==r2--b style
  // contention using two hosts on each side of a duplex pair.
  auto h = std::make_unique<SimHarness>(seed);
  const auto a1 = h->add_host("a1");
  const auto a2 = h->add_host("a2");
  const auto b1 = h->add_host("b1");
  const auto b2 = h->add_host("b2");
  net::LinkConfig edge;
  edge.rate = Bandwidth::mbps(200);
  edge.propagation_delay = 2_ms;
  net::LinkConfig core;
  core.rate = Bandwidth::mbps(50);
  core.propagation_delay = 10_ms;
  core.queue_capacity_bytes = kib(512);
  h->add_link(a1, a2, edge);
  h->add_link(b1, b2, edge);
  h->add_link(a1, b1, core);  // the shared bottleneck
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(kib(512));
  h->deploy(cfg);
  return h;
}

TEST(CrossTrafficTest, InjectsBackgroundBytes) {
  auto h = make_shared_bottleneck(1);
  CrossTrafficConfig config;
  config.flows = 3;
  config.mean_burst_bytes = kib(512);
  CrossTraffic traffic(*h, config, 7);
  h->simulator().run(h->simulator().now() + 10_s);
  EXPECT_GT(traffic.bursts_completed(), 5u);
  EXPECT_GT(traffic.bytes_injected(), mib(2));
}

TEST(CrossTrafficTest, ForegroundTransferStillExactUnderContention) {
  auto h = make_shared_bottleneck(2);
  CrossTraffic traffic(*h, CrossTrafficConfig{}, 9);
  session::TransferSpec spec;
  spec.dst = 3;  // b2
  spec.payload_bytes = mib(4);
  spec.tcp = tcp::TcpOptions{}.with_buffers(kib(512));
  const auto r = h->run_transfer(0, spec, 600_s);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(4));
}

TEST(CrossTrafficTest, ContentionReducesForegroundThroughput) {
  const auto measure = [](bool with_traffic) {
    auto h = make_shared_bottleneck(3);
    std::unique_ptr<CrossTraffic> traffic;
    if (with_traffic) {
      CrossTrafficConfig config;
      config.flows = 6;
      config.mean_burst_bytes = mib(4);
      config.mean_gap = 50_ms;
      traffic = std::make_unique<CrossTraffic>(*h, config, 11);
    }
    session::TransferSpec spec;
    spec.dst = 3;
    spec.payload_bytes = mib(8);
    spec.tcp = tcp::TcpOptions{}.with_buffers(kib(512));
    const auto r = h->run_transfer(0, spec, 600_s);
    EXPECT_TRUE(r.completed);
    return r.goodput.bits_per_second();
  };
  const double quiet = measure(false);
  const double contended = measure(true);
  EXPECT_LT(contended, 0.8 * quiet);
}

TEST(CrossTrafficTest, StopsCleanlyOnDestruction) {
  auto h = make_shared_bottleneck(4);
  {
    CrossTraffic traffic(*h, CrossTrafficConfig{}, 13);
    h->simulator().run(h->simulator().now() + 2_s);
  }
  // After destruction the background machinery must not fire again.
  const auto executed_before = h->simulator().events_executed();
  h->simulator().run(h->simulator().now() + 30_s);
  // Residual TCP teardown may run, but no new bursts: the event count
  // settles quickly.
  h->simulator().run(h->simulator().now() + 30_s);
  const auto executed_after = h->simulator().events_executed();
  EXPECT_LT(executed_after - executed_before, 2000u);
}

}  // namespace
}  // namespace lsl::testbed
