// Depot-wide relay memory pool: concurrent sessions share a bounded budget,
// and admission fails when the pool cannot meet the minimum grant.
#include <gtest/gtest.h>

#include "exp/harness.hpp"

namespace lsl::session {
namespace {

using namespace lsl::time_literals;
using exp::SimHarness;

struct MemNet {
  SimHarness h{71};
  net::NodeId a, d, b;

  explicit MemNet(std::uint64_t pool, std::uint64_t per_session) {
    a = h.add_host("a");
    d = h.add_host("d");
    b = h.add_host("b");
    net::LinkConfig fast;
    fast.rate = Bandwidth::mbps(400);
    fast.propagation_delay = 2_ms;
    net::LinkConfig slow = fast;
    slow.rate = Bandwidth::mbps(20);  // downstream bottleneck keeps
                                      // sessions alive long enough to pile up
    h.add_link(a, d, fast);
    h.add_link(d, b, slow);
    h.deploy([&](net::NodeId id) {
      DepotConfig cfg;
      cfg.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
      cfg.user_buffer_bytes = per_session;
      if (id == d) {
        cfg.total_user_memory_bytes = pool;
      }
      return cfg;
    });
  }

  SimHarness::Handle launch_one() {
    TransferSpec spec;
    spec.dst = b;
    spec.via = {d};
    spec.payload_bytes = mib(2);
    spec.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
    return h.launch(a, spec);
  }
};

TEST(DepotMemoryTest, UnlimitedPoolAcceptsEverything) {
  MemNet net(/*pool=*/0, /*per_session=*/mib(1));
  for (int i = 0; i < 6; ++i) {
    net.launch_one();
  }
  EXPECT_EQ(net.h.wait_all(600_s), 0u);
  EXPECT_EQ(net.h.depot(net.d).stats().sessions_refused, 0u);
  EXPECT_EQ(net.h.depot(net.d).stats().sessions_relayed, 6u);
}

TEST(DepotMemoryTest, PoolExhaustionRefusesLateSessions) {
  // Pool of 2 MB, 1 MB per session: the first two concurrent relays claim
  // everything; the rest are refused while those run.
  MemNet net(/*pool=*/mib(2), /*per_session=*/mib(1));
  for (int i = 0; i < 6; ++i) {
    net.launch_one();
  }
  net.h.wait_all(600_s);
  const auto& stats = net.h.depot(net.d).stats();
  EXPECT_GT(stats.sessions_refused, 0u);
  EXPECT_GE(stats.sessions_relayed, 2u);
}

TEST(DepotMemoryTest, MemoryReleasedAfterSessionEnds) {
  MemNet net(/*pool=*/mib(1), /*per_session=*/mib(1));
  const auto first = net.launch_one();
  (void)net.h.wait(first, 600_s);
  net.h.simulator().run(net.h.simulator().now() + 5_s);
  // Pool free again: the next session must be admitted.
  const auto second = net.launch_one();
  const auto r = net.h.wait(second, 600_s);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(net.h.depot(net.d).stats().sessions_refused, 0u);
}

TEST(DepotMemoryTest, PartialGrantStillRelaysCorrectly) {
  // 1.5 MB pool, 1 MB per session: the second concurrent session gets a
  // reduced (0.5 MB) grant but must still deliver exactly.
  MemNet net(/*pool=*/mib(1) + kib(512), /*per_session=*/mib(1));
  const auto h1 = net.launch_one();
  const auto h2 = net.launch_one();
  net.h.wait_all(600_s);
  EXPECT_TRUE(net.h.outcome(h1).completed);
  EXPECT_TRUE(net.h.outcome(h2).completed);
  EXPECT_EQ(net.h.outcome(h1).bytes, mib(2));
  EXPECT_EQ(net.h.outcome(h2).bytes, mib(2));
  EXPECT_EQ(net.h.depot(net.d).stats().sessions_refused, 0u);
}

}  // namespace
}  // namespace lsl::session
