// Async-session store capacity management at depots.
#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "lsl/endpoint.hpp"

namespace lsl::session {
namespace {

using namespace lsl::time_literals;
using exp::SimHarness;

struct StoreNet {
  SimHarness h{51};
  net::NodeId a, d, b;

  explicit StoreNet(std::uint64_t store_cap) {
    a = h.add_host("a");
    d = h.add_host("d");
    b = h.add_host("b");
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(200);
    link.propagation_delay = 3_ms;
    h.add_link(a, d, link);
    h.add_link(d, b, link);
    DepotConfig cfg;
    cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
    cfg.max_store_bytes = store_cap;
    h.deploy(cfg);
  }

  SessionId park(std::uint64_t bytes) {
    TransferSpec spec;
    spec.dst = b;
    spec.via = {d};
    spec.async_session = true;
    spec.payload_bytes = bytes;
    spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
    auto source = LslSource::start(h.stack(a), spec, h.rng());
    const auto id = source->session_id();
    h.simulator().run(h.simulator().now() + 30_s);
    return id;
  }
};

TEST(DepotStoreTest, StoreAccountsBytes) {
  StoreNet net(mib(16));
  const auto id = net.park(mib(2));
  EXPECT_EQ(net.h.depot(net.d).store_bytes_used(), mib(2));
  EXPECT_EQ(*net.h.depot(net.d).stored_bytes(id), mib(2));
}

TEST(DepotStoreTest, OldestSessionEvictedPastCapacity) {
  StoreNet net(mib(5));
  const auto first = net.park(mib(2));
  const auto second = net.park(mib(2));
  EXPECT_TRUE(net.h.depot(net.d).stored_bytes(first).has_value());
  EXPECT_TRUE(net.h.depot(net.d).stored_bytes(second).has_value());
  const auto third = net.park(mib(2));  // 6 MB > 5 MB: evict `first`
  EXPECT_FALSE(net.h.depot(net.d).stored_bytes(first).has_value());
  EXPECT_TRUE(net.h.depot(net.d).stored_bytes(second).has_value());
  EXPECT_TRUE(net.h.depot(net.d).stored_bytes(third).has_value());
  EXPECT_EQ(net.h.depot(net.d).stats().sessions_evicted, 1u);
  EXPECT_LE(net.h.depot(net.d).store_bytes_used(), mib(5));
}

TEST(DepotStoreTest, OversizeSessionNeverStored) {
  StoreNet net(mib(1));
  const auto id = net.park(mib(2));
  EXPECT_FALSE(net.h.depot(net.d).stored_bytes(id).has_value());
  EXPECT_EQ(net.h.depot(net.d).stats().sessions_evicted, 1u);
  EXPECT_EQ(net.h.depot(net.d).store_bytes_used(), 0u);
}

TEST(DepotStoreTest, FetchOfEvictedSessionFails) {
  StoreNet net(mib(3));
  const auto first = net.park(mib(2));
  net.park(mib(2));  // evicts `first`
  bool errored = false;
  auto fetcher = AsyncFetcher::start(net.h.stack(net.b), net.d, first,
                                     tcp::TcpOptions{});
  fetcher->on_error = [&] { errored = true; };
  net.h.simulator().run(net.h.simulator().now() + 30_s);
  EXPECT_TRUE(errored);
}

TEST(DepotStoreTest, SurvivorStillFetchable) {
  StoreNet net(mib(3));
  net.park(mib(2));
  const auto second = net.park(mib(2));
  bool fetched = false;
  std::uint64_t got = 0;
  auto fetcher = AsyncFetcher::start(net.h.stack(net.b), net.d, second,
                                     tcp::TcpOptions{}.with_buffers(mib(1)));
  fetcher->on_complete = [&](const AsyncFetcher::Result& r) {
    fetched = true;
    got = r.bytes;
  };
  net.h.simulator().run(net.h.simulator().now() + 60_s);
  EXPECT_TRUE(fetched);
  EXPECT_EQ(got, mib(2));
}

}  // namespace
}  // namespace lsl::session
