#include <gtest/gtest.h>

#include <memory>

#include "exp/harness.hpp"
#include "exp/raw_tcp.hpp"
#include "exp/trace.hpp"
#include "fixtures.hpp"

namespace lsl::exp {
namespace {

using namespace lsl::time_literals;

net::LinkConfig fast_link() {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(200);
  cfg.propagation_delay = 5_ms;
  cfg.queue_capacity_bytes = mib(4);
  return cfg;
}

std::unique_ptr<SimHarness> make_pair_net(std::uint64_t seed = 1) {
  auto h = std::make_unique<SimHarness>(seed);
  const auto a = h->add_host("a");
  const auto b = h->add_host("b");
  h->add_link(a, b, fast_link());
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  h->deploy(cfg);
  return h;
}

TEST(SimHarnessTest, RunTransferRoundTrip) {
  const auto net = make_pair_net();
  auto& h = *net;
  session::TransferSpec spec;
  spec.dst = 1;
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = h.run_transfer(0, spec);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(1));
  EXPECT_GT(r.goodput.bits_per_second(), 0.0);
}

TEST(SimHarnessTest, WaitAllDrainsConcurrentTransfers) {
  const auto net = make_pair_net();
  auto& h = *net;
  session::TransferSpec spec;
  spec.dst = 1;
  spec.payload_bytes = kib(500);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  std::vector<SimHarness::Handle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(h.launch(0, spec));
  }
  EXPECT_EQ(h.wait_all(60_s), 0u);
  for (const auto& handle : handles) {
    const auto outcome = h.outcome(handle);
    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.bytes, kib(500));
  }
}

TEST(SimHarnessTest, WaitOnUnfinishedDeadlineExpires) {
  const auto net = make_pair_net();
  auto& h = *net;
  session::TransferSpec spec;
  spec.dst = 1;
  spec.payload_bytes = mib(64);  // will not finish in 10 ms
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto handle = h.launch(0, spec);
  const auto outcome = h.wait(handle, 10_ms);
  EXPECT_FALSE(outcome.completed);
}

TEST(SimHarnessTest, TracedLaunchSeesSourceConnection) {
  const auto net = make_pair_net();
  auto& h = *net;
  session::TransferSpec spec;
  spec.dst = 1;
  spec.payload_bytes = kib(64);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  tcp::Connection* conn = nullptr;
  const auto handle =
      h.launch_traced(0, spec, [&](tcp::Connection& c) { conn = &c; });
  ASSERT_NE(conn, nullptr);
  const auto outcome = h.wait(handle, 60_s);
  EXPECT_TRUE(outcome.completed);
  // Let the tail ACKs drain back to the source before inspecting it.
  h.simulator().run(h.simulator().now() + 5_s);
  EXPECT_GE(conn->acked_payload(), kib(64));
}

TEST(SeqTraceTest, RecordsMonotoneSamples) {
  SeqTrace trace;
  trace.add_sample(1_s, 100);
  trace.add_sample(2_s, 300);
  trace.add_sample(3_s, 700);
  EXPECT_EQ(trace.value_at(500_ms), 0u);
  EXPECT_EQ(trace.value_at(1_s), 100u);
  EXPECT_EQ(trace.value_at(2500_ms), 300u);
  EXPECT_EQ(trace.value_at(10_s), 700u);
}

TEST(SeqTraceTest, AttachRecordsAckAdvances) {
  const auto net = make_pair_net();
  auto& h = *net;
  session::TransferSpec spec;
  spec.dst = 1;
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  SeqTrace trace;
  const auto origin = h.simulator().now();
  const auto handle = h.launch_traced(
      0, spec, [&](tcp::Connection& c) { trace.attach(c, origin); });
  (void)h.wait(handle, 60_s);
  h.simulator().run(h.simulator().now() + 5_s);  // drain tail ACKs
  ASSERT_FALSE(trace.empty());
  // The final sample covers the whole payload (header + 1 MB).
  EXPECT_GE(trace.samples().back().second, mib(1));
  // Samples are nondecreasing in both time and value.
  for (std::size_t i = 1; i < trace.samples().size(); ++i) {
    EXPECT_GE(trace.samples()[i].first, trace.samples()[i - 1].first);
    EXPECT_GE(trace.samples()[i].second, trace.samples()[i - 1].second);
  }
}

TEST(TraceAveragerTest, AveragesAcrossRuns) {
  TraceAverager averager(10_s, 1_s);
  SeqTrace run1;
  run1.add_sample(1_s, mib(2));
  SeqTrace run2;
  run2.add_sample(1_s, mib(4));
  averager.add_run("flow", run1);
  averager.add_run("flow", run2);
  const auto series = averager.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].label, "flow");
  // At and after t=1s the average is (2 + 4) / 2 = 3 MB.
  EXPECT_DOUBLE_EQ(series[0].mib_at_grid[1], 3.0);
  EXPECT_DOUBLE_EQ(series[0].mib_at_grid[9], 3.0);
  EXPECT_DOUBLE_EQ(series[0].mib_at_grid[0], 0.0);
}

TEST(TraceAveragerTest, SeparateLabelsSeparateSeries) {
  TraceAverager averager(4_s, 1_s);
  SeqTrace a;
  a.add_sample(1_s, mib(1));
  SeqTrace b;
  b.add_sample(1_s, mib(8));
  averager.add_run("sub1", a);
  averager.add_run("sub2", b);
  EXPECT_EQ(averager.series().size(), 2u);
  EXPECT_EQ(averager.grid_seconds().size(), 5u);
}

TEST(RawTcpTest, SingleTransferDeliversExactly) {
  sim::Simulator sim;
  net::Topology topo(sim, 3);
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_duplex_link(a, b, fast_link());
  topo.compute_routes();
  tcp::TcpStack sa(topo, a);
  tcp::TcpStack sb(topo, b);
  const auto r = run_raw_transfer(sim, sa, sb, mib(2),
                                  tcp::TcpOptions{}.with_buffers(mib(1)));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, mib(2));
}

TEST(RawTcpTest, ParallelStripesDeliverExactly) {
  sim::Simulator sim;
  net::Topology topo(sim, 3);
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_duplex_link(a, b, fast_link());
  topo.compute_routes();
  tcp::TcpStack sa(topo, a);
  tcp::TcpStack sb(topo, b);
  // 10 MB over 4 stripes (not divisible evenly: 2.5 MB each).
  const auto r = run_parallel_transfer(sim, sa, sb, 10 * kMiB, 4,
                                       tcp::TcpOptions{}.with_buffers(mib(1)));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, 10 * kMiB);
}

TEST(RawTcpTest, ParallelBeatsSingleOnLossyHighRttPath) {
  const auto run = [](std::size_t streams) {
    sim::Simulator sim;
    net::Topology topo(sim, 9);
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(400);
    link.propagation_delay = 35_ms;
    link.queue_capacity_bytes = mib(8);
    link.loss_rate = 1e-3;
    topo.add_duplex_link(a, b, link);
    topo.compute_routes();
    tcp::TcpStack sa(topo, a);
    tcp::TcpStack sb(topo, b);
    return run_parallel_transfer(sim, sa, sb, mib(16), streams,
                                 tcp::TcpOptions{}.with_buffers(mib(8)));
  };
  const auto one = run(1);
  const auto four = run(4);
  ASSERT_TRUE(one.completed);
  ASSERT_TRUE(four.completed);
  EXPECT_GT(four.goodput.bits_per_second(),
            1.4 * one.goodput.bits_per_second());
}

}  // namespace
}  // namespace lsl::exp
