// Failure injection: the protocol stack and the session layer must survive
// link brownouts, blackouts, peer aborts, and depot refusals without
// wedging, leaking connections, or mis-accounting bytes.
#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "fixtures.hpp"
#include "lsl/endpoint.hpp"
#include "sched/scheduler.hpp"
#include <algorithm>
#include <cstring>
#include <memory>

namespace lsl {
namespace {

using namespace lsl::time_literals;
using testing::TwoNodeNet;

net::LinkConfig wan_link(double mbit, SimTime one_way) {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(mbit);
  cfg.propagation_delay = one_way;
  cfg.queue_capacity_bytes = mib(4);
  return cfg;
}

TEST(FailureTest, TransferSurvivesLinkBrownout) {
  // Mid-transfer, the link degrades to 30% loss for two seconds, then
  // recovers. The transfer must complete exactly.
  TwoNodeNet net(wan_link(50, 10_ms));
  constexpr net::Port kPort = 5001;
  std::uint64_t received = 0;
  bool done = false;
  net.stack_b->listen(kPort, [&](tcp::Connection::Ptr conn) {
    conn->on_readable = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
    };
    conn->on_eof = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
      done = true;
      c->close();
    };
  });
  auto client = net.stack_a->connect(net.b, kPort,
                                     tcp::TcpOptions{}.with_buffers(mib(1)));
  auto queued = std::make_shared<std::uint64_t>(0);
  const auto pump = [c = client.get(), queued] {
    while (*queued < mib(4)) {
      const std::uint64_t n = c->write_synthetic(mib(4) - *queued);
      *queued += n;
      if (n == 0) {
        return;
      }
    }
    c->close();
  };
  client->on_connected = pump;
  client->on_writable = pump;
  // Brownout window: both directions of the a<->b pair are links 0 and 1.
  net.sim.schedule_at(1_s, [&] {
    net.topo->link(0).set_loss_rate(0.30);
    net.topo->link(1).set_loss_rate(0.30);
  });
  net.sim.schedule_at(3_s, [&] {
    net.topo->link(0).set_loss_rate(0.0);
    net.topo->link(1).set_loss_rate(0.0);
  });
  net.sim.run(600_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(received, mib(4));
}

TEST(FailureTest, TransferSurvivesTotalBlackout) {
  // A complete outage (100% loss) long enough to trigger repeated RTO
  // backoff; connectivity returns and the transfer finishes.
  TwoNodeNet net(wan_link(50, 10_ms));
  constexpr net::Port kPort = 5001;
  std::uint64_t received = 0;
  bool done = false;
  net.stack_b->listen(kPort, [&](tcp::Connection::Ptr conn) {
    conn->on_readable = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
    };
    conn->on_eof = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
      done = true;
      c->close();
    };
  });
  auto client = net.stack_a->connect(net.b, kPort,
                                     tcp::TcpOptions{}.with_buffers(mib(1)));
  client->on_connected = [c = client.get()] {
    c->write_synthetic(mib(1));
    c->close();
  };
  net.sim.schedule_at(60_ms, [&] {
    net.topo->link(0).set_loss_rate(1.0);
    net.topo->link(1).set_loss_rate(1.0);
  });
  net.sim.schedule_at(20_s, [&] {
    net.topo->link(0).set_loss_rate(0.0);
    net.topo->link(1).set_loss_rate(0.0);
  });
  net.sim.run(600_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(received, mib(1));
  EXPECT_GT(client->stats().timeouts, 1u);
}

TEST(FailureTest, ReceiverAbortMidTransferClosesSender) {
  TwoNodeNet net(wan_link(100, 5_ms));
  constexpr net::Port kPort = 5002;
  tcp::Connection::Ptr server;
  auto consumed = std::make_shared<std::uint64_t>(0);
  net.stack_b->listen(kPort, [&, consumed](tcp::Connection::Ptr conn) {
    server = conn;
    conn->on_readable = [consumed, c = conn.get()] {
      *consumed += c->read(c->readable_bytes()).n;
      if (*consumed > 100'000) {
        c->abort();  // pull the plug mid-stream
      }
    };
  });
  bool sender_closed = false;
  auto client = net.stack_a->connect(net.b, kPort,
                                     tcp::TcpOptions{}.with_buffers(mib(1)));
  client->on_connected = [c = client.get()] { c->write_synthetic(mib(2)); };
  client->on_closed = [&] { sender_closed = true; };
  net.sim.run(60_s);
  EXPECT_TRUE(sender_closed);
  EXPECT_EQ(client->state(), tcp::TcpState::kDead);
  EXPECT_EQ(net.stack_a->open_connections(), 0u);
}

TEST(FailureTest, RelaySessionDiesCleanlyWhenDepotRefuses) {
  exp::SimHarness h(31);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(100, 5_ms));
  h.add_link(d, b, wan_link(100, 5_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
  cfg.max_sessions = 0;  // depot d refuses everything
  h.deploy([&](net::NodeId id) {
    auto c = cfg;
    c.max_sessions = (id == d) ? 0 : 64;
    return c;
  });
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
  const auto r = h.run_transfer(a, spec, 30_s);
  EXPECT_FALSE(r.completed);
  EXPECT_GT(h.depot(d).stats().sessions_refused, 0u);
  // Nothing leaks: the refused upstream connection is gone on both ends.
  h.simulator().run(h.simulator().now() + 5_s);
  EXPECT_EQ(h.depot(d).active_sessions(), 0u);
}

TEST(FailureTest, GarbageHeaderAbortsSession) {
  // A client that speaks gibberish at the LSL port gets reset, and the
  // depot carries no residue.
  exp::SimHarness h(32);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  h.add_link(a, d, wan_link(100, 5_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
  h.deploy(cfg);

  bool closed = false;
  auto conn = h.stack(a).connect(d, session::kLslPort,
                                 tcp::TcpOptions{}.with_buffers(kib(256)));
  conn->on_connected = [c = conn.get()] {
    const char junk[] = "GET / HTTP/1.0\r\n\r\n";
    std::vector<std::byte> bytes(sizeof junk - 1);
    std::memcpy(bytes.data(), junk, bytes.size());
    c->write_bytes(bytes);
  };
  conn->on_closed = [&] { closed = true; };
  h.simulator().run(h.simulator().now() + 30_s);
  EXPECT_TRUE(closed);
  EXPECT_EQ(h.depot(d).active_sessions(), 0u);
}

TEST(FailureTest, BrownoutOnRelayPathStillDeliversExactly) {
  exp::SimHarness h(33);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(50, 10_ms));
  h.add_link(d, b, wan_link(50, 10_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  cfg.user_buffer_bytes = mib(2);
  h.deploy(cfg);
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(4);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto handle = h.launch(a, spec);
  // Degrade the depot->b leg (links 2,3) mid-flight.
  h.simulator().schedule_at(1_s, [&] {
    h.topology().link(2).set_loss_rate(0.25);
    h.topology().link(3).set_loss_rate(0.25);
  });
  h.simulator().schedule_at(4_s, [&] {
    h.topology().link(2).set_loss_rate(0.0);
    h.topology().link(3).set_loss_rate(0.0);
  });
  const auto r = h.wait(handle, 600_s);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(4));
}


TEST(FailureTest, DepotShutdownMidRelayResetsSessionsCleanly) {
  exp::SimHarness h(34);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(50, 10_ms));
  h.add_link(d, b, wan_link(50, 10_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  h.deploy(cfg);
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(8);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto handle = h.launch(a, spec);
  // Kill the depot mid-transfer.
  h.simulator().schedule_at(500_ms, [&] { h.depot(d).shutdown(); });
  const auto r = h.wait(handle, 60_s);
  EXPECT_FALSE(r.completed);
  h.simulator().run(h.simulator().now() + 10_s);
  EXPECT_EQ(h.depot(d).active_sessions(), 0u);
  // Every stack quiesces: the RSTs tore everything down.
  for (const auto node : {a, d, b}) {
    EXPECT_EQ(h.stack(node).open_connections(), 0u) << "node " << node;
  }
}

TEST(FailureTest, DepotRestartAcceptsNewSessions) {
  exp::SimHarness h(35);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(100, 5_ms));
  h.add_link(d, b, wan_link(100, 5_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  h.deploy(cfg);
  h.depot(d).shutdown();
  h.simulator().run(h.simulator().now() + 1_s);
  EXPECT_FALSE(h.depot(d).running());
  h.depot(d).restart();
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = h.run_transfer(a, spec);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(1));
}

TEST(FailureTest, ShutdownDropsAsyncStore) {
  exp::SimHarness h(36);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(100, 5_ms));
  h.add_link(d, b, wan_link(100, 5_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  h.deploy(cfg);
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.async_session = true;
  spec.payload_bytes = kib(512);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  auto source = session::LslSource::start(h.stack(a), spec, h.rng());
  const auto id = source->session_id();
  h.simulator().run(h.simulator().now() + 30_s);
  ASSERT_TRUE(h.depot(d).stored_bytes(id).has_value());
  h.depot(d).shutdown();
  EXPECT_FALSE(h.depot(d).stored_bytes(id).has_value());
  EXPECT_EQ(h.depot(d).store_bytes_used(), 0u);
}

// ---- session recovery (fault-tolerance layer) -----------------------------

/// The Figure 2 triangle: 155 Mbit links, depot path faster than direct.
net::LinkConfig fig2_link(double delay_ms) {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(155);
  cfg.propagation_delay = SimTime::from_seconds(delay_ms * 1e-3);
  cfg.queue_capacity_bytes = mib(8);
  return cfg;
}

TEST(FailureTest, DepotCrashMidRelayRecoversAndResumes) {
  // 64 MB scheduled through the Denver depot; the depot dies mid-transfer.
  // The source must blacklist it, fail over to the direct path, and resume
  // from the sink's committed offset -- not byte 0.
  exp::SimHarness h(37);
  const auto a = h.add_host("ash.ucsb.edu", "ucsb.edu");
  const auto d = h.add_host("depot.denver", "core");
  const auto b = h.add_host("bell.uiuc.edu", "uiuc.edu");
  h.add_link(a, d, fig2_link(23.0));
  h.add_link(d, b, fig2_link(22.5));
  h.add_link(a, b, fig2_link(35.0));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(8));
  cfg.user_buffer_bytes = mib(16);
  h.deploy(cfg);

  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(64);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(8));
  session::RecoveryConfig recovery;
  recovery.stall_timeout = 5_s;
  const auto handle = h.launch_reliable(a, spec, recovery);
  h.simulator().schedule_at(1500_ms, [&] { h.depot(d).shutdown(); });

  const auto r = h.wait(handle, 600_s);
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.bytes, mib(64));
  EXPECT_GE(r.retries, 1);
  EXPECT_TRUE(r.recovered);

  const auto transfer = h.reliable(handle);
  ASSERT_NE(transfer, nullptr);
  // The retry resumed from a nonzero committed offset...
  EXPECT_GT(transfer->committed_offset(), 0u);
  EXPECT_EQ(h.depot(b).stats().sessions_resumed, 1u);
  EXPECT_GE(h.depot(b).stats().sessions_interrupted, 1u);
  // ...so across both attempts the sink consumed each byte exactly once.
  // A resend from byte 0 would push this well past the payload size.
  EXPECT_EQ(h.depot(b).stats().bytes_delivered, mib(64));
  const auto& blacklist = transfer->blacklist();
  EXPECT_NE(std::find(blacklist.begin(), blacklist.end(), d),
            blacklist.end());
}

TEST(FailureTest, DepotCrashWithRecoveryDisabledReportsFailure) {
  // The same crash with recovery off: the failure must be detected and
  // reported promptly (not hang to the deadline), with no retry.
  exp::SimHarness h(37);  // same seed: identical pre-crash trajectory
  const auto a = h.add_host("ash.ucsb.edu", "ucsb.edu");
  const auto d = h.add_host("depot.denver", "core");
  const auto b = h.add_host("bell.uiuc.edu", "uiuc.edu");
  h.add_link(a, d, fig2_link(23.0));
  h.add_link(d, b, fig2_link(22.5));
  h.add_link(a, b, fig2_link(35.0));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(8));
  cfg.user_buffer_bytes = mib(16);
  h.deploy(cfg);

  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(64);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(8));
  session::RecoveryConfig recovery;
  recovery.enabled = false;
  recovery.stall_timeout = 5_s;
  const auto handle = h.launch_reliable(a, spec, recovery);
  h.simulator().schedule_at(1500_ms, [&] { h.depot(d).shutdown(); });

  const auto r = h.wait(handle, 600_s);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.retries, 0);
  EXPECT_LT(h.simulator().now(), 60_s);  // detection, not deadline expiry
  EXPECT_EQ(h.depot(b).stats().sessions_resumed, 0u);
}

TEST(FailureTest, DepotCrashWithQueuedMulticastChildrenTearsDownCleanly) {
  // The staging root dies while its children are mid-stream; every branch
  // of the tree must be reset without leaking sessions or connections.
  exp::SimHarness h(39);
  const auto src = h.add_host("src");
  const auto root = h.add_host("root");
  const auto m1 = h.add_host("m1");
  const auto m2 = h.add_host("m2");
  const auto l1 = h.add_host("l1");
  const auto l2 = h.add_host("l2");
  h.add_link(src, root, wan_link(100, 5_ms));
  h.add_link(root, m1, wan_link(100, 5_ms));
  h.add_link(root, m2, wan_link(100, 5_ms));
  h.add_link(m1, l1, wan_link(100, 5_ms));
  h.add_link(m2, l2, wan_link(100, 5_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  cfg.user_buffer_bytes = mib(2);
  h.deploy(cfg);

  session::MulticastTree tree;
  tree.entries = {{root, 0}, {m1, 0}, {m2, 0}, {l1, 1}, {l2, 2}};
  session::TransferSpec spec;
  spec.dst = root;
  spec.multicast = tree;
  spec.payload_bytes = mib(8);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  auto source = session::LslSource::start(h.stack(src), spec, h.rng());
  h.simulator().schedule_at(200_ms, [&] { h.depot(root).shutdown(); });
  h.simulator().run(h.simulator().now() + 60_s);

  for (const auto node : {src, root, m1, m2, l1, l2}) {
    EXPECT_EQ(h.depot(node).active_sessions(), 0u) << "node " << node;
    EXPECT_EQ(h.stack(node).open_connections(), 0u) << "node " << node;
  }
}

TEST(FailureTest, FailoverToSecondDepotResumesByteExact) {
  // Two parallel depot paths; the first depot dies and the route provider
  // (standing in for the MMP scheduler) offers the second. Delivery must
  // be byte-exact across the two attempts.
  exp::SimHarness h(40);
  const auto a = h.add_host("a");
  const auto d1 = h.add_host("d1");
  const auto d2 = h.add_host("d2");
  const auto b = h.add_host("b");
  h.add_link(a, d1, wan_link(100, 10_ms));
  h.add_link(d1, b, wan_link(100, 10_ms));
  h.add_link(a, d2, wan_link(100, 10_ms));
  h.add_link(d2, b, wan_link(100, 10_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  cfg.user_buffer_bytes = mib(2);
  h.deploy(cfg);

  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d1};
  spec.payload_bytes = mib(16);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  session::RecoveryConfig recovery;
  recovery.stall_timeout = 5_s;
  const auto provider =
      [d1, d2](const std::vector<net::NodeId>& blacklist)
      -> std::vector<net::NodeId> {
    if (std::find(blacklist.begin(), blacklist.end(), d2) ==
        blacklist.end()) {
      return {d2};
    }
    return {};  // both depots dead: degrade to direct
  };
  const auto handle = h.launch_reliable(a, spec, recovery, provider);
  h.simulator().schedule_at(300_ms, [&] { h.depot(d1).shutdown(); });

  const auto r = h.wait(handle, 600_s);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(r.bytes, mib(16));
  EXPECT_EQ(h.depot(b).stats().bytes_delivered, mib(16));
  EXPECT_EQ(h.depot(b).stats().sessions_resumed, 1u);
  // The second attempt rode through d2, not d1.
  EXPECT_GT(h.depot(d2).stats().bytes_relayed, 0u);
}

TEST(FailureTest, RecoveryReroutesViaScheduler) {
  // route_avoiding() as the route provider: with the mid depot exec'd out
  // of the matrix the scheduler picks the alternate depot chain.
  exp::SimHarness h(41);
  const auto a = h.add_host("a");
  const auto d1 = h.add_host("d1");
  const auto d2 = h.add_host("d2");
  const auto b = h.add_host("b");
  h.add_link(a, d1, wan_link(100, 10_ms));
  h.add_link(d1, b, wan_link(100, 10_ms));
  h.add_link(a, d2, wan_link(80, 10_ms));
  h.add_link(d2, b, wan_link(80, 10_ms));
  h.add_link(a, b, wan_link(10, 30_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  cfg.user_buffer_bytes = mib(2);
  h.deploy(cfg);

  // A bandwidth matrix mirroring the topology: depot legs fast, direct slow.
  sched::CostMatrix matrix(4);
  const auto set = [&](std::size_t i, std::size_t j, double mbit) {
    matrix.set_bandwidth(i, j, Bandwidth::mbps(mbit));
    matrix.set_bandwidth(j, i, Bandwidth::mbps(mbit));
  };
  set(a, d1, 100);
  set(d1, b, 100);
  set(a, d2, 80);
  set(d2, b, 80);
  set(a, b, 10);
  sched::Scheduler scheduler(matrix);
  ASSERT_EQ(scheduler.route(a, b).via(), std::vector<net::NodeId>{d1});

  session::TransferSpec spec;
  spec.dst = b;
  spec.via = scheduler.route(a, b).via();
  spec.payload_bytes = mib(16);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  session::RecoveryConfig recovery;
  recovery.stall_timeout = 5_s;
  const auto provider =
      [&scheduler, a, b](const std::vector<net::NodeId>& blacklist) {
        std::vector<std::size_t> excluded(blacklist.begin(),
                                          blacklist.end());
        return scheduler.route_avoiding(a, b, excluded).via();
      };
  const auto handle = h.launch_reliable(a, spec, recovery, provider);
  h.simulator().schedule_at(300_ms, [&] { h.depot(d1).shutdown(); });

  const auto r = h.wait(handle, 600_s);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(h.depot(b).stats().bytes_delivered, mib(16));
  // The reroute went through the scheduler's second choice.
  EXPECT_GT(h.depot(d2).stats().bytes_relayed, 0u);
}

}  // namespace
}  // namespace lsl
