// Failure injection: the protocol stack and the session layer must survive
// link brownouts, blackouts, peer aborts, and depot refusals without
// wedging, leaking connections, or mis-accounting bytes.
#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "fixtures.hpp"
#include "lsl/endpoint.hpp"
#include <cstring>
#include <memory>

namespace lsl {
namespace {

using namespace lsl::time_literals;
using testing::TwoNodeNet;

net::LinkConfig wan_link(double mbit, SimTime one_way) {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(mbit);
  cfg.propagation_delay = one_way;
  cfg.queue_capacity_bytes = mib(4);
  return cfg;
}

TEST(FailureTest, TransferSurvivesLinkBrownout) {
  // Mid-transfer, the link degrades to 30% loss for two seconds, then
  // recovers. The transfer must complete exactly.
  TwoNodeNet net(wan_link(50, 10_ms));
  constexpr net::Port kPort = 5001;
  std::uint64_t received = 0;
  bool done = false;
  net.stack_b->listen(kPort, [&](tcp::Connection::Ptr conn) {
    conn->on_readable = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
    };
    conn->on_eof = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
      done = true;
      c->close();
    };
  });
  auto client = net.stack_a->connect(net.b, kPort,
                                     tcp::TcpOptions{}.with_buffers(mib(1)));
  auto queued = std::make_shared<std::uint64_t>(0);
  const auto pump = [c = client.get(), queued] {
    while (*queued < mib(4)) {
      const std::uint64_t n = c->write_synthetic(mib(4) - *queued);
      *queued += n;
      if (n == 0) {
        return;
      }
    }
    c->close();
  };
  client->on_connected = pump;
  client->on_writable = pump;
  // Brownout window: both directions of the a<->b pair are links 0 and 1.
  net.sim.schedule_at(1_s, [&] {
    net.topo->link(0).set_loss_rate(0.30);
    net.topo->link(1).set_loss_rate(0.30);
  });
  net.sim.schedule_at(3_s, [&] {
    net.topo->link(0).set_loss_rate(0.0);
    net.topo->link(1).set_loss_rate(0.0);
  });
  net.sim.run(600_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(received, mib(4));
}

TEST(FailureTest, TransferSurvivesTotalBlackout) {
  // A complete outage (100% loss) long enough to trigger repeated RTO
  // backoff; connectivity returns and the transfer finishes.
  TwoNodeNet net(wan_link(50, 10_ms));
  constexpr net::Port kPort = 5001;
  std::uint64_t received = 0;
  bool done = false;
  net.stack_b->listen(kPort, [&](tcp::Connection::Ptr conn) {
    conn->on_readable = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
    };
    conn->on_eof = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
      done = true;
      c->close();
    };
  });
  auto client = net.stack_a->connect(net.b, kPort,
                                     tcp::TcpOptions{}.with_buffers(mib(1)));
  client->on_connected = [c = client.get()] {
    c->write_synthetic(mib(1));
    c->close();
  };
  net.sim.schedule_at(60_ms, [&] {
    net.topo->link(0).set_loss_rate(1.0);
    net.topo->link(1).set_loss_rate(1.0);
  });
  net.sim.schedule_at(20_s, [&] {
    net.topo->link(0).set_loss_rate(0.0);
    net.topo->link(1).set_loss_rate(0.0);
  });
  net.sim.run(600_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(received, mib(1));
  EXPECT_GT(client->stats().timeouts, 1u);
}

TEST(FailureTest, ReceiverAbortMidTransferClosesSender) {
  TwoNodeNet net(wan_link(100, 5_ms));
  constexpr net::Port kPort = 5002;
  tcp::Connection::Ptr server;
  auto consumed = std::make_shared<std::uint64_t>(0);
  net.stack_b->listen(kPort, [&, consumed](tcp::Connection::Ptr conn) {
    server = conn;
    conn->on_readable = [consumed, c = conn.get()] {
      *consumed += c->read(c->readable_bytes()).n;
      if (*consumed > 100'000) {
        c->abort();  // pull the plug mid-stream
      }
    };
  });
  bool sender_closed = false;
  auto client = net.stack_a->connect(net.b, kPort,
                                     tcp::TcpOptions{}.with_buffers(mib(1)));
  client->on_connected = [c = client.get()] { c->write_synthetic(mib(2)); };
  client->on_closed = [&] { sender_closed = true; };
  net.sim.run(60_s);
  EXPECT_TRUE(sender_closed);
  EXPECT_EQ(client->state(), tcp::TcpState::kDead);
  EXPECT_EQ(net.stack_a->open_connections(), 0u);
}

TEST(FailureTest, RelaySessionDiesCleanlyWhenDepotRefuses) {
  exp::SimHarness h(31);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(100, 5_ms));
  h.add_link(d, b, wan_link(100, 5_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
  cfg.max_sessions = 0;  // depot d refuses everything
  h.deploy([&](net::NodeId id) {
    auto c = cfg;
    c.max_sessions = (id == d) ? 0 : 64;
    return c;
  });
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
  const auto r = h.run_transfer(a, spec, 30_s);
  EXPECT_FALSE(r.completed);
  EXPECT_GT(h.depot(d).stats().sessions_refused, 0u);
  // Nothing leaks: the refused upstream connection is gone on both ends.
  h.simulator().run(h.simulator().now() + 5_s);
  EXPECT_EQ(h.depot(d).active_sessions(), 0u);
}

TEST(FailureTest, GarbageHeaderAbortsSession) {
  // A client that speaks gibberish at the LSL port gets reset, and the
  // depot carries no residue.
  exp::SimHarness h(32);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  h.add_link(a, d, wan_link(100, 5_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
  h.deploy(cfg);

  bool closed = false;
  auto conn = h.stack(a).connect(d, session::kLslPort,
                                 tcp::TcpOptions{}.with_buffers(kib(256)));
  conn->on_connected = [c = conn.get()] {
    const char junk[] = "GET / HTTP/1.0\r\n\r\n";
    std::vector<std::byte> bytes(sizeof junk - 1);
    std::memcpy(bytes.data(), junk, bytes.size());
    c->write_bytes(bytes);
  };
  conn->on_closed = [&] { closed = true; };
  h.simulator().run(h.simulator().now() + 30_s);
  EXPECT_TRUE(closed);
  EXPECT_EQ(h.depot(d).active_sessions(), 0u);
}

TEST(FailureTest, BrownoutOnRelayPathStillDeliversExactly) {
  exp::SimHarness h(33);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(50, 10_ms));
  h.add_link(d, b, wan_link(50, 10_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  cfg.user_buffer_bytes = mib(2);
  h.deploy(cfg);
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(4);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto handle = h.launch(a, spec);
  // Degrade the depot->b leg (links 2,3) mid-flight.
  h.simulator().schedule_at(1_s, [&] {
    h.topology().link(2).set_loss_rate(0.25);
    h.topology().link(3).set_loss_rate(0.25);
  });
  h.simulator().schedule_at(4_s, [&] {
    h.topology().link(2).set_loss_rate(0.0);
    h.topology().link(3).set_loss_rate(0.0);
  });
  const auto r = h.wait(handle, 600_s);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(4));
}


TEST(FailureTest, DepotShutdownMidRelayResetsSessionsCleanly) {
  exp::SimHarness h(34);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(50, 10_ms));
  h.add_link(d, b, wan_link(50, 10_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  h.deploy(cfg);
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(8);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto handle = h.launch(a, spec);
  // Kill the depot mid-transfer.
  h.simulator().schedule_at(500_ms, [&] { h.depot(d).shutdown(); });
  const auto r = h.wait(handle, 60_s);
  EXPECT_FALSE(r.completed);
  h.simulator().run(h.simulator().now() + 10_s);
  EXPECT_EQ(h.depot(d).active_sessions(), 0u);
  // Every stack quiesces: the RSTs tore everything down.
  for (const auto node : {a, d, b}) {
    EXPECT_EQ(h.stack(node).open_connections(), 0u) << "node " << node;
  }
}

TEST(FailureTest, DepotRestartAcceptsNewSessions) {
  exp::SimHarness h(35);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(100, 5_ms));
  h.add_link(d, b, wan_link(100, 5_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  h.deploy(cfg);
  h.depot(d).shutdown();
  h.simulator().run(h.simulator().now() + 1_s);
  EXPECT_FALSE(h.depot(d).running());
  h.depot(d).restart();
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = h.run_transfer(a, spec);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(1));
}

TEST(FailureTest, ShutdownDropsAsyncStore) {
  exp::SimHarness h(36);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan_link(100, 5_ms));
  h.add_link(d, b, wan_link(100, 5_ms));
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  h.deploy(cfg);
  session::TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.async_session = true;
  spec.payload_bytes = kib(512);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  auto source = session::LslSource::start(h.stack(a), spec, h.rng());
  const auto id = source->session_id();
  h.simulator().run(h.simulator().now() + 30_s);
  ASSERT_TRUE(h.depot(d).stored_bytes(id).has_value());
  h.depot(d).shutdown();
  EXPECT_FALSE(h.depot(d).stored_bytes(id).has_value());
  EXPECT_EQ(h.depot(d).store_bytes_used(), 0u);
}

}  // namespace
}  // namespace lsl
