// Fault subsystem: deterministic plans, churn expansion, injector
// application/healing, NWS measurement blackouts, scheduler reroutes
// around blacklisted depots, and the scenario-file fault directives.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "exp/scenario.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "nws/monitor.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;

// ---- plans and churn ------------------------------------------------------

TEST(FaultPlanTest, SortedOrdersByTime) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kNwsBlackout, .at = 5_s});
  plan.add({.kind = fault::FaultKind::kDepotCrash, .at = 1_s, .node = 2});
  plan.add({.kind = fault::FaultKind::kLinkDown,
            .at = 3_s,
            .link_a = 0,
            .link_b = 1});
  const auto sorted = plan.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].kind, fault::FaultKind::kDepotCrash);
  EXPECT_EQ(sorted[1].kind, fault::FaultKind::kLinkDown);
  EXPECT_EQ(sorted[2].kind, fault::FaultKind::kNwsBlackout);
}

TEST(FaultPlanTest, ChurnIsDeterministicPerSeed) {
  fault::ChurnSpec churn;
  churn.node = 1;
  churn.mtbf = 20_s;
  churn.mttr = 2_s;
  churn.horizon = 600_s;

  const auto expand = [&](std::uint64_t seed) {
    Rng rng(seed);
    fault::FaultPlan plan;
    plan.add_churn(churn, rng);
    return plan.faults;
  };
  const auto first = expand(42);
  const auto again = expand(42);
  const auto other = expand(43);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);
}

TEST(FaultPlanTest, ChurnRespectsHorizonAndAlternates) {
  fault::ChurnSpec churn;
  churn.node = 3;
  churn.mtbf = 10_s;
  churn.mttr = 1_s;
  churn.start = 5_s;
  churn.horizon = 300_s;
  Rng rng(7);
  fault::FaultPlan plan;
  plan.add_churn(churn, rng);
  ASSERT_FALSE(plan.empty());
  for (const auto& f : plan.faults) {
    EXPECT_EQ(f.kind, fault::FaultKind::kDepotCrash);
    EXPECT_EQ(f.node, 3u);
    EXPECT_GE(f.at, churn.start);
    EXPECT_LT(f.at, churn.horizon);
    // Transient: every crash has a repair, clamped away from zero.
    EXPECT_GE(f.duration, SimTime::milliseconds(1));
  }
  // Crashes are spaced by up-time + repair, so they never overlap.
  for (std::size_t i = 1; i < plan.faults.size(); ++i) {
    EXPECT_GE(plan.faults[i].at,
              plan.faults[i - 1].at + plan.faults[i - 1].duration);
  }
}

// ---- injector -------------------------------------------------------------

TEST(FaultInjectorTest, LinkDownFlipsLossAndHeals) {
  exp::SimHarness h(50);
  const auto a = h.add_host("a");
  const auto b = h.add_host("b");
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(100);
  cfg.propagation_delay = 5_ms;
  cfg.loss_rate = 0.01;
  h.add_link(a, b, cfg);
  h.deploy(session::DepotConfig{});

  fault::FaultInjector injector(h.simulator(), h.topology());
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kLinkDown,
            .at = 1_s,
            .duration = 2_s,
            .link_a = a,
            .link_b = b});
  injector.schedule(plan);

  net::Link* forward = h.topology().link_between(a, b);
  net::Link* backward = h.topology().link_between(b, a);
  ASSERT_NE(forward, nullptr);
  ASSERT_NE(backward, nullptr);

  h.simulator().run(1500_ms);
  EXPECT_DOUBLE_EQ(forward->config().loss_rate, 1.0);
  EXPECT_DOUBLE_EQ(backward->config().loss_rate, 1.0);
  EXPECT_EQ(injector.active_faults(), 1);

  h.simulator().run(4_s);
  // Healing restores the original (nonzero) configured loss.
  EXPECT_DOUBLE_EQ(forward->config().loss_rate, 0.01);
  EXPECT_DOUBLE_EQ(backward->config().loss_rate, 0.01);
  EXPECT_EQ(injector.active_faults(), 0);
  EXPECT_EQ(injector.stats().injected, 1u);
  EXPECT_EQ(injector.stats().healed, 1u);
  EXPECT_EQ(injector.stats().link_down, 1u);
}

TEST(FaultInjectorTest, BrownoutUsesSpecLoss) {
  exp::SimHarness h(51);
  const auto a = h.add_host("a");
  const auto b = h.add_host("b");
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(100);
  cfg.propagation_delay = 5_ms;
  h.add_link(a, b, cfg);
  h.deploy(session::DepotConfig{});

  fault::FaultInjector injector(h.simulator(), h.topology());
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kLinkBrownout,
            .at = 1_s,
            .duration = 1_s,
            .link_a = a,
            .link_b = b,
            .loss = 0.42});
  injector.schedule(plan);

  net::Link* forward = h.topology().link_between(a, b);
  h.simulator().run(1500_ms);
  EXPECT_DOUBLE_EQ(forward->config().loss_rate, 0.42);
  h.simulator().run(3_s);
  EXPECT_DOUBLE_EQ(forward->config().loss_rate, 0.0);
  EXPECT_EQ(injector.stats().link_brownouts, 1u);
}

TEST(FaultInjectorTest, DepotAndNwsFaultsDriveControls) {
  exp::SimHarness h(52);
  const auto a = h.add_host("a");
  const auto b = h.add_host("b");
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(100);
  cfg.propagation_delay = 5_ms;
  h.add_link(a, b, cfg);
  h.deploy(session::DepotConfig{});

  std::vector<std::pair<net::NodeId, bool>> depot_events;
  std::vector<bool> nws_events;
  fault::FaultInjector injector(h.simulator(), h.topology());
  injector.set_depot_control([&](net::NodeId node, bool up) {
    depot_events.emplace_back(node, up);
  });
  injector.set_nws_control(
      [&](bool blackout) { nws_events.push_back(blackout); });

  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kDepotCrash,
            .at = 1_s,
            .duration = 2_s,
            .node = b});
  plan.add({.kind = fault::FaultKind::kNwsBlackout, .at = 2_s,
            .duration = 3_s});
  injector.schedule(plan);
  h.simulator().run(10_s);

  ASSERT_EQ(depot_events.size(), 2u);
  EXPECT_EQ(depot_events[0], (std::pair<net::NodeId, bool>{b, false}));
  EXPECT_EQ(depot_events[1], (std::pair<net::NodeId, bool>{b, true}));
  ASSERT_EQ(nws_events.size(), 2u);
  EXPECT_TRUE(nws_events[0]);
  EXPECT_FALSE(nws_events[1]);
  EXPECT_EQ(injector.stats().depot_crashes, 1u);
  EXPECT_EQ(injector.stats().depot_restarts, 1u);
  EXPECT_EQ(injector.stats().nws_blackouts, 1u);
}

// ---- NWS blackout ---------------------------------------------------------

TEST(NwsBlackoutTest, BlackoutEpochsTakeNoMeasurements) {
  nws::PerformanceMonitor monitor({"siteA", "siteB"}, nws::NoiseModel{}, 9);
  const nws::TruthFn truth = [](std::size_t, std::size_t) {
    return Bandwidth::mbps(100.0);
  };
  monitor.set_blackout(true);
  for (int i = 0; i < 5; ++i) {
    monitor.observe_epoch(truth);
  }
  // No probes ran: the pair never got a forecaster, so no forecast exists.
  EXPECT_EQ(monitor.forecast(0, 1).bits_per_second(), 0.0);

  monitor.set_blackout(false);
  monitor.observe_epoch(truth);
  EXPECT_GT(monitor.forecast(0, 1).bits_per_second(), 0.0);
}

// ---- scheduler reroute ----------------------------------------------------

TEST(RerouteTest, ExcludeNodeMakesItUnroutable) {
  sched::CostMatrix matrix(3);
  matrix.set_bandwidth(0, 1, Bandwidth::mbps(100));
  matrix.set_bandwidth(1, 2, Bandwidth::mbps(100));
  matrix.set_bandwidth(0, 2, Bandwidth::mbps(10));
  matrix.set_bandwidth(1, 0, Bandwidth::mbps(100));
  matrix.set_bandwidth(2, 1, Bandwidth::mbps(100));
  matrix.set_bandwidth(2, 0, Bandwidth::mbps(10));
  matrix.exclude_node(1);
  EXPECT_EQ(matrix.cost(0, 1), sched::kInfiniteCost);
  EXPECT_EQ(matrix.cost(1, 2), sched::kInfiniteCost);
  EXPECT_EQ(matrix.cost(2, 1), sched::kInfiniteCost);
  // Untouched edges survive.
  EXPECT_LT(matrix.cost(0, 2), sched::kInfiniteCost);
}

TEST(RerouteTest, RouteAvoidingDegradesToDirect) {
  sched::CostMatrix matrix(3);
  const auto set = [&](std::size_t i, std::size_t j, double mbit) {
    matrix.set_bandwidth(i, j, Bandwidth::mbps(mbit));
    matrix.set_bandwidth(j, i, Bandwidth::mbps(mbit));
  };
  set(0, 1, 100);  // fast depot legs through node 1
  set(1, 2, 100);
  set(0, 2, 10);  // slow direct edge
  sched::Scheduler scheduler(matrix);
  EXPECT_EQ(scheduler.route(0, 2).via(), std::vector<net::NodeId>{1});

  const auto avoided = scheduler.route_avoiding(0, 2, {1});
  EXPECT_EQ(avoided.via(), std::vector<net::NodeId>{});
  ASSERT_EQ(avoided.path.size(), 2u);
  EXPECT_EQ(avoided.path.front(), 0u);
  EXPECT_EQ(avoided.path.back(), 2u);

  // An empty exclusion list must match the plain route.
  const auto same = scheduler.route_avoiding(0, 2, {});
  EXPECT_EQ(same.path, scheduler.route(0, 2).path);
}

// ---- scenario directives --------------------------------------------------

std::string kTriangle =
    "host a\nhost d\nhost b\n"
    "link a d rate=100 delay=5\n"
    "link d b rate=100 delay=5\n"
    "link a b rate=100 delay=10\n";

TEST(FaultScenarioTest, ParsesFaultChurnAndRecoveryDirectives) {
  const auto parsed = exp::parse_scenario(
      kTriangle +
      "fault depot-crash d at=2 for=3\n"
      "fault link-down a d at=1\n"
      "fault brownout d b at=4 for=2 loss=0.5\n"
      "fault nws-blackout at=6 for=60\n"
      "churn d mtbf=30 mttr=2 start=1 horizon=120\n"
      "recovery retries=4 stall=5 backoff=100 max_backoff=2000 "
      "jitter=0.1\n"
      "transfer a b size=1 via=d\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const auto& s = *parsed.scenario;

  ASSERT_EQ(s.faults.size(), 4u);
  EXPECT_EQ(s.faults[0].kind, fault::FaultKind::kDepotCrash);
  EXPECT_EQ(s.faults[0].a, "d");
  EXPECT_DOUBLE_EQ(s.faults[0].at_s, 2.0);
  EXPECT_DOUBLE_EQ(s.faults[0].for_s, 3.0);
  EXPECT_EQ(s.faults[1].kind, fault::FaultKind::kLinkDown);
  EXPECT_DOUBLE_EQ(s.faults[1].for_s, 0.0);  // permanent
  EXPECT_EQ(s.faults[2].kind, fault::FaultKind::kLinkBrownout);
  EXPECT_DOUBLE_EQ(s.faults[2].loss, 0.5);
  EXPECT_EQ(s.faults[3].kind, fault::FaultKind::kNwsBlackout);

  ASSERT_EQ(s.churns.size(), 1u);
  EXPECT_EQ(s.churns[0].node, "d");
  EXPECT_DOUBLE_EQ(s.churns[0].mtbf_s, 30.0);
  EXPECT_DOUBLE_EQ(s.churns[0].mttr_s, 2.0);

  ASSERT_TRUE(s.recovery.has_value());
  EXPECT_TRUE(s.recovery->enabled);
  EXPECT_EQ(s.recovery->max_retries, 4);
  EXPECT_EQ(s.recovery->stall_timeout, 5_s);
  EXPECT_EQ(s.recovery->initial_backoff, 100_ms);
  EXPECT_EQ(s.recovery->max_backoff, 2_s);
  EXPECT_DOUBLE_EQ(s.recovery->backoff_jitter, 0.1);
}

TEST(FaultScenarioTest, RecoveryOffDisablesRetries) {
  const auto parsed =
      exp::parse_scenario(kTriangle + "recovery off\ntransfer a b size=1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.scenario->recovery.has_value());
  EXPECT_FALSE(parsed.scenario->recovery->enabled);
}

TEST(FaultScenarioTest, RejectsBadFaultDirectives) {
  EXPECT_FALSE(
      exp::parse_scenario(kTriangle + "fault meteor-strike a at=1\n").ok());
  EXPECT_FALSE(  // missing at=
      exp::parse_scenario(kTriangle + "fault depot-crash d\n").ok());
  EXPECT_FALSE(  // unknown host
      exp::parse_scenario(kTriangle + "fault depot-crash x at=1\n").ok());
  EXPECT_FALSE(  // loss only applies to brownouts
      exp::parse_scenario(kTriangle + "fault link-down a d at=1 loss=0.5\n")
          .ok());
  EXPECT_FALSE(  // churn needs positive means
      exp::parse_scenario(kTriangle + "churn d mtbf=0\n").ok());
  EXPECT_FALSE(
      exp::parse_scenario(kTriangle + "recovery warp=9\n").ok());
}

TEST(FaultScenarioTest, CrashedDepotScenarioRecoversEndToEnd) {
  const auto parsed = exp::parse_scenario(
      kTriangle +
      "fault depot-crash d at=0.3 for=2\n"
      "recovery retries=4 stall=5\n"
      "transfer a b size=8 via=d\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  std::size_t leaked = 99;
  const auto outcomes =
      exp::run_scenario(*parsed.scenario, 11, 600_s, nullptr, &leaked);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].outcome.completed);
  EXPECT_TRUE(outcomes[0].outcome.recovered);
  EXPECT_GE(outcomes[0].outcome.retries, 1);
  EXPECT_EQ(leaked, 0u);
}

TEST(FaultScenarioTest, FaultWithoutRecoveryDirectiveReportsFailure) {
  // Faulty scenarios run detection-only when `recovery` is absent: the
  // transfer is reported failed promptly instead of hanging.
  const auto parsed = exp::parse_scenario(
      kTriangle +
      "fault depot-crash d at=0.3\n"
      "transfer a b size=8 via=d\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  std::size_t leaked = 99;
  const auto outcomes =
      exp::run_scenario(*parsed.scenario, 12, 600_s, nullptr, &leaked);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].outcome.completed);
  EXPECT_TRUE(outcomes[0].outcome.failed);
  EXPECT_EQ(outcomes[0].outcome.retries, 0);
  EXPECT_EQ(leaked, 0u);
}

}  // namespace
}  // namespace lsl
