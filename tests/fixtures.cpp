#include "fixtures.hpp"

#include <functional>

namespace lsl::testing {

TransferResult run_bulk_transfer(sim::Simulator& sim, tcp::TcpStack& src,
                                 tcp::TcpStack& dst, std::uint64_t bytes,
                                 const tcp::TcpOptions& opts,
                                 SimTime deadline) {
  constexpr net::Port kPort = 5001;
  TransferResult result;

  // Receiver: drain everything as it arrives; record completion at EOF.
  std::uint64_t received = 0;
  tcp::Connection::Ptr server_conn;
  dst.listen(kPort, [&](tcp::Connection::Ptr conn) {
    server_conn = conn;
    conn->on_readable = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
    };
    conn->on_eof = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
      result.completed = true;
      result.elapsed = sim.now();  // adjusted to a duration below
      c->close();
    };
  }, opts);

  // Sender: keep the socket buffer topped up, close when all queued.
  const SimTime start = sim.now();
  auto client = src.connect(dst.node_id(), kPort, opts);
  std::uint64_t queued = 0;
  const auto pump = [&, c = client.get()] {
    while (queued < bytes) {
      const std::uint64_t n = c->write_synthetic(bytes - queued);
      queued += n;
      if (n == 0) {
        break;
      }
    }
    if (queued == bytes) {
      c->close();
    }
  };
  client->on_connected = pump;
  client->on_writable = pump;

  // Run until the receiver sees EOF (plus close handshake drains).
  while (sim.now() < deadline && !result.completed) {
    if (!sim.step()) {
      break;
    }
  }
  // Let the teardown finish quietly.
  sim.run(sim.now() + SimTime::seconds(2));

  result.bytes_delivered = received;
  result.elapsed =
      (result.completed ? result.elapsed : sim.now()) - start;
  result.sender_stats = client->stats();
  result.goodput = throughput_of(received, result.elapsed);
  dst.stop_listening(kPort);
  return result;
}

}  // namespace lsl::testing
