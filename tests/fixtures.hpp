// Shared test fixtures: small topologies and a bulk-transfer driver used by
// the TCP and LSL test suites.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"
#include "util/units.hpp"

namespace lsl::testing {

/// Two hosts joined by one duplex link.
struct TwoNodeNet {
  sim::Simulator sim;
  std::unique_ptr<net::Topology> topo;
  net::NodeId a = 0;
  net::NodeId b = 0;
  std::unique_ptr<tcp::TcpStack> stack_a;
  std::unique_ptr<tcp::TcpStack> stack_b;

  explicit TwoNodeNet(const net::LinkConfig& link, std::uint64_t seed = 42) {
    topo = std::make_unique<net::Topology>(sim, seed);
    a = topo->add_node("a", "site-a");
    b = topo->add_node("b", "site-b");
    topo->add_duplex_link(a, b, link);
    topo->compute_routes();
    stack_a = std::make_unique<tcp::TcpStack>(*topo, a);
    stack_b = std::make_unique<tcp::TcpStack>(*topo, b);
  }
};

/// Result of driving a one-directional bulk transfer to completion.
struct TransferResult {
  bool completed = false;
  std::uint64_t bytes_delivered = 0;
  SimTime elapsed = SimTime::zero();
  Bandwidth goodput;
  tcp::ConnectionStats sender_stats;
};

/// Sends `bytes` from stack_src to a sink listening on stack_dst and runs the
/// simulation until the receiver sees EOF (or `deadline` passes).
TransferResult run_bulk_transfer(sim::Simulator& sim, tcp::TcpStack& src,
                                 tcp::TcpStack& dst, std::uint64_t bytes,
                                 const tcp::TcpOptions& opts,
                                 SimTime deadline = SimTime::seconds(600));

}  // namespace lsl::testing
