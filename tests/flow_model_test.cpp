#include <gtest/gtest.h>

#include <cmath>
#include "fixtures.hpp"
#include "flow/path_model.hpp"
#include "flow/tcp_model.hpp"

namespace lsl::flow {
namespace {

using namespace lsl::time_literals;

TEST(TcpModelTest, SteadyRateWindowLimited) {
  ConnectionParams p;
  p.rtt = 80_ms;
  p.bottleneck = Bandwidth::gbps(1);
  p.window_bytes = 64 * kKiB;
  EXPECT_NEAR(steady_rate(p).megabits_per_second(), 6.55, 0.05);
}

TEST(TcpModelTest, SteadyRateBottleneckLimited) {
  ConnectionParams p;
  p.rtt = 10_ms;
  p.bottleneck = Bandwidth::mbps(50);
  p.window_bytes = mib(8);
  EXPECT_DOUBLE_EQ(steady_rate(p).megabits_per_second(), 50.0);
}

TEST(TcpModelTest, SteadyRateLossLimited) {
  ConnectionParams p;
  p.rtt = 70_ms;
  p.bottleneck = Bandwidth::gbps(1);
  p.window_bytes = mib(8);
  p.loss_rate = 2e-4;
  const double expected =
      kMathisConstant * 1460 * 8 / (0.07 * std::sqrt(2e-4)) / 1e6;
  EXPECT_NEAR(steady_rate(p).megabits_per_second(), expected, 0.1);
}

TEST(TcpModelTest, SteadyRateScalesInverselyWithRtt) {
  ConnectionParams fast;
  fast.rtt = 35_ms;
  fast.window_bytes = 64 * kKiB;
  fast.bottleneck = Bandwidth::gbps(1);
  ConnectionParams slow = fast;
  slow.rtt = 70_ms;
  EXPECT_NEAR(steady_rate(fast).bits_per_second() /
                  steady_rate(slow).bits_per_second(),
              2.0, 1e-9);
}

TEST(TcpModelTest, TransferTimeMonotoneInSize) {
  ConnectionParams p;
  p.rtt = 50_ms;
  p.window_bytes = mib(1);
  SimTime prev = SimTime::zero();
  for (const std::uint64_t size : {kib(64), mib(1), mib(4), mib(16)}) {
    const SimTime t = transfer_time(p, size);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(TcpModelTest, TransferTimeMonotoneInRtt) {
  ConnectionParams a;
  a.rtt = 20_ms;
  a.window_bytes = 64 * kKiB;
  ConnectionParams b = a;
  b.rtt = 80_ms;
  EXPECT_LT(transfer_time(a, mib(8)), transfer_time(b, mib(8)));
}

TEST(TcpModelTest, SmallTransferDominatedByRtt) {
  ConnectionParams p;
  p.rtt = 100_ms;
  p.bottleneck = Bandwidth::gbps(1);
  p.window_bytes = mib(8);
  // 1 KB: handshake + under one window -- a couple of RTTs.
  const SimTime t = transfer_time(p, 1024);
  EXPECT_GE(t, 100_ms);
  EXPECT_LE(t, 400_ms);
}

TEST(TcpModelTest, ZeroBytesCostsOnlyHandshake) {
  ConnectionParams p;
  p.rtt = 50_ms;
  EXPECT_EQ(transfer_time(p, 0), 50_ms);
}

TEST(RelayModelTest, SteadyRateIsMinOverHops) {
  ConnectionParams fast;
  fast.rtt = 10_ms;
  fast.bottleneck = Bandwidth::mbps(100);
  fast.window_bytes = mib(8);
  ConnectionParams slow = fast;
  slow.bottleneck = Bandwidth::mbps(20);
  const std::vector<ConnectionParams> hops{fast, slow, fast};
  EXPECT_DOUBLE_EQ(relay_steady_rate(hops).megabits_per_second(), 20.0);
}

TEST(RelayModelTest, SingleHopEqualsDirectModel) {
  ConnectionParams p;
  p.rtt = 40_ms;
  p.window_bytes = mib(1);
  const std::vector<ConnectionParams> hops{p};
  RelayPathParams path;
  path.hops = hops;
  EXPECT_EQ(relay_transfer_time(path, mib(4)), transfer_time(p, mib(4)));
}

TEST(RelayModelTest, SetupCostGrowsWithHopCount) {
  ConnectionParams hop;
  hop.rtt = 30_ms;
  hop.window_bytes = mib(1);
  hop.bottleneck = Bandwidth::mbps(100);
  const std::vector<ConnectionParams> two{hop, hop};
  const std::vector<ConnectionParams> four{hop, hop, hop, hop};
  RelayPathParams p2{two, 32 * kMiB};
  RelayPathParams p4{four, 32 * kMiB};
  // Tiny transfer: the serial setup dominates, so more hops is slower.
  EXPECT_LT(relay_transfer_time(p2, kib(4)), relay_transfer_time(p4, kib(4)));
}

TEST(RelayModelTest, SplitBeatsDirectWhenWindowLimited) {
  // The logistical effect in the model: 64 KB windows over 80 ms direct vs
  // two 40 ms hops. Large transfer so steady state dominates.
  ConnectionParams direct;
  direct.rtt = 80_ms;
  direct.window_bytes = 64 * kKiB;
  direct.bottleneck = Bandwidth::gbps(1);
  ConnectionParams half = direct;
  half.rtt = 40_ms;
  const std::vector<ConnectionParams> hops{half, half};
  RelayPathParams path{hops, 32 * kMiB};
  const SimTime t_direct = transfer_time(direct, mib(64));
  const SimTime t_relay = relay_transfer_time(path, mib(64));
  const double speedup = t_direct.to_seconds() / t_relay.to_seconds();
  EXPECT_NEAR(speedup, 2.0, 0.1);
}

TEST(RelayModelTest, SplitLosesOnSmallTransfersWhenPathDoglegs) {
  // A realistic depot detour: two 60 ms hops replacing an 80 ms direct
  // path. For a tiny transfer the serial session setup dominates and the
  // relay loses; ramp-rate gains cannot amortize.
  ConnectionParams direct;
  direct.rtt = 80_ms;
  direct.window_bytes = mib(8);
  direct.bottleneck = Bandwidth::mbps(100);
  ConnectionParams leg = direct;
  leg.rtt = 60_ms;
  const std::vector<ConnectionParams> hops{leg, leg};
  RelayPathParams path{hops, 32 * kMiB};
  EXPECT_GT(relay_transfer_time(path, kib(16)),
            transfer_time(direct, kib(16)));
}

TEST(RelayModelTest, PerfectlyHalvedPathHelpsEvenSmallTransfers) {
  // When hop RTTs exactly halve the direct RTT the faster ramp compensates
  // for the serial setup -- consistent with the paper's Figs 2/3 where LSL
  // wins from 1 MB up.
  ConnectionParams direct;
  direct.rtt = 80_ms;
  direct.window_bytes = 64 * kKiB;
  direct.bottleneck = Bandwidth::gbps(1);
  ConnectionParams half = direct;
  half.rtt = 40_ms;
  const std::vector<ConnectionParams> hops{half, half};
  RelayPathParams path{hops, 32 * kMiB};
  EXPECT_LT(relay_transfer_time(path, mib(1)), transfer_time(direct, mib(1)));
}

// ---------------------------------------------------------------------------
// Cross-validation against the packet-level simulator.

struct ValidationCase {
  const char* label;
  double mbit;
  SimTime one_way;
  double loss;
  std::uint64_t buffer;
  std::uint64_t bytes;
  double tolerance;  ///< allowed |log-ratio| between model and simulator
};

class FlowVsPacketTest : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(FlowVsPacketTest, TransferTimeMatchesSimulatorWithinTolerance) {
  const auto& c = GetParam();

  net::LinkConfig link;
  link.rate = Bandwidth::mbps(c.mbit);
  link.propagation_delay = c.one_way;
  link.queue_capacity_bytes = mib(4);
  link.loss_rate = c.loss;
  testing::TwoNodeNet net(link, /*seed=*/1234);
  const auto sim_result = testing::run_bulk_transfer(
      net.sim, *net.stack_a, *net.stack_b, c.bytes,
      tcp::TcpOptions{}.with_buffers(c.buffer), SimTime::seconds(3600));
  ASSERT_TRUE(sim_result.completed) << c.label;

  ConnectionParams params;
  params.rtt = c.one_way * 2;
  // Payload efficiency: 40 header bytes per 1460-byte segment.
  params.bottleneck = Bandwidth::mbps(c.mbit * 1460.0 / 1500.0);
  params.window_bytes = c.buffer;
  params.loss_rate = c.loss;
  const SimTime model_time = transfer_time(params, c.bytes);

  const double ratio =
      model_time.to_seconds() / sim_result.elapsed.to_seconds();
  EXPECT_GT(ratio, 1.0 / c.tolerance)
      << c.label << ": model " << model_time.str() << " vs sim "
      << sim_result.elapsed.str();
  EXPECT_LT(ratio, c.tolerance)
      << c.label << ": model " << model_time.str() << " vs sim "
      << sim_result.elapsed.str();
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, FlowVsPacketTest,
    ::testing::Values(
        ValidationCase{"window_limited_64k_70ms", 1000, 35_ms, 0.0,
                       64 * kKiB, mib(8), 1.3},
        ValidationCase{"window_limited_64k_30ms", 1000, 15_ms, 0.0,
                       64 * kKiB, mib(8), 1.3},
        ValidationCase{"bottleneck_limited_clean", 100, 2_ms, 0.0, mib(1),
                       mib(16), 1.3},
        ValidationCase{"loss_2e4_rtt70", 400, 35_ms, 2e-4, mib(8), mib(32),
                       1.8},
        ValidationCase{"loss_2e4_rtt46", 400, 23_ms, 2e-4, mib(8), mib(32),
                       1.8},
        // Large enough that the steady loss-limited regime dominates; a
        // 16 MiB transfer here rides the slow-start overshoot parked in
        // the deep queue and finishes ~2x faster than Mathis steady state.
        ValidationCase{"loss_1e3_rtt46", 400, 23_ms, 1e-3, mib(8), mib(64),
                       1.8},
        ValidationCase{"small_transfer_rtt_bound", 100, 40_ms, 0.0, mib(1),
                       kib(256), 1.6}),
    [](const ::testing::TestParamInfo<ValidationCase>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------------
// Calibration goldens: pin the model's constants against the packet stack.
// If one of these fails after a congestion-control or recovery change,
// re-fit (bulk transfers over lossy WANs; implied C = rate * rtt * sqrt(p)
// / (mss * 8)) and update kMathisConstant -- do not loosen the bounds.

TEST(CalibrationGolden, MathisConstantMatchesPacketStack) {
  // Loss-limited regime: 50 Mbps / 30 ms RTT / 1e-3 loss with windows well
  // above the loss-limited operating point, so the Mathis cap binds.
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(50);
  link.propagation_delay = 15_ms;
  link.queue_capacity_bytes = kib(256);
  link.loss_rate = 1e-3;
  double sum_bps = 0.0;
  int runs = 0;
  for (const std::uint64_t seed : {11, 23, 47}) {
    testing::TwoNodeNet net(link, seed);
    const auto r = testing::run_bulk_transfer(
        net.sim, *net.stack_a, *net.stack_b, mib(16),
        tcp::TcpOptions{}.with_buffers(kib(256)), SimTime::seconds(3600));
    ASSERT_TRUE(r.completed);
    sum_bps += r.goodput.bits_per_second();
    ++runs;
  }
  const double measured = sum_bps / runs;
  const double implied_c =
      measured * 0.030 * std::sqrt(1e-3) / (1460.0 * 8.0);
  EXPECT_NEAR(implied_c, kMathisConstant, 0.45)
      << "packet stack drifted from the pinned Mathis constant; re-fit";

  ConnectionParams params;
  params.rtt = 30_ms;
  params.bottleneck = Bandwidth::mbps(50 * 1460.0 / 1500.0);
  params.window_bytes = kib(256);
  params.loss_rate = 1e-3;
  const double predicted = steady_rate(params).bits_per_second();
  EXPECT_GT(predicted / measured, 0.70);
  EXPECT_LT(predicted / measured, 1.45);
}

TEST(CalibrationGolden, CubicConstantMatchesPacketStack) {
  // CUBIC-limited regime: 2 Gbps / 160 ms RTT / 1e-4 loss, well past the
  // crossover RTT, with windows far above the loss-limited operating
  // point. 512 MiB gives ~37 loss epochs per run, enough to wash out the
  // slow-start transient. Implied constant from the response function:
  // C = rate_segments * rtt^(1/4) * p^(3/4).
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(2000);
  link.propagation_delay = 80_ms;
  link.queue_capacity_bytes = mib(8);
  link.loss_rate = 1e-4;
  double sum_bps = 0.0;
  int runs = 0;
  for (const std::uint64_t seed : {11, 23}) {
    testing::TwoNodeNet net(link, seed);
    const auto r = testing::run_bulk_transfer(
        net.sim, *net.stack_a, *net.stack_b, mib(512),
        tcp::TcpOptions{}.with_buffers(mib(8)).with_cca(Cca::kCubic),
        SimTime::seconds(3600));
    ASSERT_TRUE(r.completed);
    sum_bps += r.goodput.bits_per_second();
    ++runs;
  }
  const double measured = sum_bps / runs;
  const double implied_c = measured * std::pow(0.160, 0.25) *
                           std::pow(1e-4, 0.75) / (1460.0 * 8.0);
  EXPECT_NEAR(implied_c, kCubicRateConstant, 0.40)
      << "packet stack drifted from the pinned CUBIC constant; re-fit";

  ConnectionParams params;
  params.rtt = 160_ms;
  params.bottleneck = Bandwidth::mbps(2000 * 1460.0 / 1500.0);
  params.window_bytes = mib(8);
  params.loss_rate = 1e-4;
  params.cca = Cca::kCubic;
  const double predicted = steady_rate(params).bits_per_second();
  EXPECT_GT(predicted / measured, 0.60);
  EXPECT_LT(predicted / measured, 1.50);
}

TEST(CalibrationGolden, BbrTracksTheWindowLimitThroughLoss) {
  // BBR's model is loss-blind: on the same lossy high-BDP path the flow
  // model predicts min(window/RTT, bottleneck) and the packet stack must
  // land within a loose band of it -- orders of magnitude above what a
  // loss-capped model would say (~21 Mbit/s here).
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(2000);
  link.propagation_delay = 80_ms;
  link.queue_capacity_bytes = mib(8);
  link.loss_rate = 1e-4;
  testing::TwoNodeNet net(link, /*seed=*/11);
  const auto r = testing::run_bulk_transfer(
      net.sim, *net.stack_a, *net.stack_b, mib(256),
      tcp::TcpOptions{}.with_buffers(mib(8)).with_cca(Cca::kBbr),
      SimTime::seconds(3600));
  ASSERT_TRUE(r.completed);
  const double measured = r.goodput.bits_per_second();

  ConnectionParams params;
  params.rtt = 160_ms;
  params.bottleneck = Bandwidth::mbps(2000 * 1460.0 / 1500.0);
  params.window_bytes = mib(8);
  params.loss_rate = 1e-4;
  params.cca = Cca::kBbr;
  const double predicted = steady_rate(params).bits_per_second();
  EXPECT_NEAR(predicted / 1e6, mib(8) * 8.0 / 0.160 / 1e6, 1.0);
  EXPECT_GT(predicted / measured, 0.70);
  EXPECT_LT(predicted / measured, 2.00);
}

TEST(CalibrationGolden, SlowStartRampMatchesPacketStack) {
  // Ramp-dominated transfer: 512 KiB over a clean 100 Mbps / 60 ms RTT
  // path finishes inside slow start, so the model's doubling ramp is the
  // entire prediction.
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(100);
  link.propagation_delay = 30_ms;
  link.queue_capacity_bytes = mib(1);
  testing::TwoNodeNet net(link, /*seed=*/7);
  const auto r = testing::run_bulk_transfer(
      net.sim, *net.stack_a, *net.stack_b, kib(512),
      tcp::TcpOptions{}.with_buffers(mib(4)), SimTime::seconds(600));
  ASSERT_TRUE(r.completed);

  ConnectionParams params;
  params.rtt = 60_ms;
  params.bottleneck = Bandwidth::mbps(100 * 1460.0 / 1500.0);
  params.window_bytes = mib(4);
  const double ratio = transfer_time(params, kib(512)).to_seconds() /
                       r.elapsed.to_seconds();
  EXPECT_GT(ratio, 0.70);
  EXPECT_LT(ratio, 1.40);
}

}  // namespace
}  // namespace lsl::flow
