// Cross-fidelity validation: the fluid data plane must carry TCP streams
// through the same connection machinery as the packet plane -- handshakes,
// FIN teardown, resets, backpressure, and fault injection -- and its goodput
// must track packet-fidelity goodput within a committed tolerance.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fixtures.hpp"
#include "flow/fluid.hpp"
#include "net/topology.hpp"
#include "tcp/stack.hpp"
#include "util/units.hpp"

namespace lsl {
namespace {

using testing::run_bulk_transfer;
using testing::TransferResult;
using testing::TwoNodeNet;

net::LinkConfig wan_link(double mbps, int one_way_ms, double loss = 0.0) {
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(mbps);
  link.propagation_delay = SimTime::milliseconds(one_way_ms);
  link.queue_capacity_bytes = 256 * kKiB;
  link.loss_rate = loss;
  return link;
}

TransferResult transfer(const net::LinkConfig& link, bool fluid,
                        std::uint64_t bytes, const tcp::TcpOptions& opts,
                        std::uint64_t seed = 42) {
  TwoNodeNet net{link, seed};
  if (fluid) {
    net.topo->enable_fluid();
  }
  return run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, bytes, opts);
}

double relative_gap(double a, double b) {
  return std::abs(a - b) / std::max(a, b);
}

TEST(FluidFidelityTest, FluidTransferDeliversAllBytesWithEof) {
  const auto r = transfer(wan_link(10, 20), /*fluid=*/true, 4 * kMiB,
                          tcp::TcpOptions{}.with_buffers(64 * kKiB));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, 4 * kMiB);
  EXPECT_GT(r.goodput.megabits_per_second(), 1.0);
}

TEST(FluidFidelityTest, BottleneckLimitedGoodputMatchesPacketFidelity) {
  // 10 Mbps bottleneck, 40 ms RTT, 64 KiB windows: the link is the binding
  // constraint in both fidelities.
  const auto opts = tcp::TcpOptions{}.with_buffers(64 * kKiB);
  const auto packet = transfer(wan_link(10, 20), false, 8 * kMiB, opts);
  const auto fluid = transfer(wan_link(10, 20), true, 8 * kMiB, opts);
  ASSERT_TRUE(packet.completed);
  ASSERT_TRUE(fluid.completed);
  EXPECT_LT(relative_gap(packet.goodput.bits_per_second(),
                         fluid.goodput.bits_per_second()),
            0.10)
      << "packet=" << packet.goodput.str() << " fluid=" << fluid.goodput.str();
}

TEST(FluidFidelityTest, WindowLimitedGoodputMatchesPacketFidelity) {
  // 100 Mbps link, 80 ms RTT, 64 KiB windows: throughput pinned at
  // window/RTT ~ 6.5 Mbps, far below the link rate.
  const auto opts = tcp::TcpOptions{}.with_buffers(64 * kKiB);
  const auto packet = transfer(wan_link(100, 40), false, 8 * kMiB, opts);
  const auto fluid = transfer(wan_link(100, 40), true, 8 * kMiB, opts);
  ASSERT_TRUE(packet.completed);
  ASSERT_TRUE(fluid.completed);
  EXPECT_LT(relative_gap(packet.goodput.bits_per_second(),
                         fluid.goodput.bits_per_second()),
            0.10)
      << "packet=" << packet.goodput.str() << " fluid=" << fluid.goodput.str();
}

TEST(FluidFidelityTest, LossyPathGoodputTracksPacketFidelity) {
  // 1e-3 loss puts packet mode into Mathis territory; the fluid cap uses
  // the same model, so the two should land in the same regime. Loss
  // recovery dynamics are stochastic, so the tolerance is wider here.
  const auto opts = tcp::TcpOptions{}.with_buffers(256 * kKiB);
  const auto packet = transfer(wan_link(50, 15, 1e-3), false, 8 * kMiB, opts);
  const auto fluid = transfer(wan_link(50, 15, 1e-3), true, 8 * kMiB, opts);
  ASSERT_TRUE(packet.completed);
  ASSERT_TRUE(fluid.completed);
  EXPECT_LT(relative_gap(packet.goodput.bits_per_second(),
                         fluid.goodput.bits_per_second()),
            0.40)
      << "packet=" << packet.goodput.str() << " fluid=" << fluid.goodput.str();
}

TEST(FluidFidelityTest, FluidRunsAreExactlyReproducible) {
  const auto opts = tcp::TcpOptions{}.with_buffers(64 * kKiB);
  const auto r1 = transfer(wan_link(10, 20, 1e-4), true, 4 * kMiB, opts);
  const auto r2 = transfer(wan_link(10, 20, 1e-4), true, 4 * kMiB, opts);
  ASSERT_TRUE(r1.completed);
  EXPECT_EQ(r1.elapsed.ns(), r2.elapsed.ns());
  EXPECT_EQ(r1.bytes_delivered, r2.bytes_delivered);
  EXPECT_EQ(r1.sender_stats.segments_sent, r2.sender_stats.segments_sent);
}

TEST(FluidFidelityTest, DeadLinkTimesOutHandshakeInFluidMode) {
  // Control packets still ride the real links: a dead link must surface as
  // a connect timeout exactly as at packet fidelity.
  TwoNodeNet net{wan_link(10, 5)};
  net.topo->enable_fluid();
  net.topo->link(0).set_loss_rate(1.0);
  net.topo->link(1).set_loss_rate(1.0);

  net.stack_b->listen(5001, [](tcp::Connection::Ptr) {});
  auto conn = net.stack_a->connect(net.b, 5001);
  tcp::ConnectionError err = tcp::ConnectionError::kNone;
  bool closed = false;
  conn->on_error = [&](tcp::ConnectionError e) { err = e; };
  conn->on_closed = [&] { closed = true; };
  net.sim.run(net.sim.now() + SimTime::seconds(300));
  EXPECT_TRUE(closed);
  EXPECT_EQ(err, tcp::ConnectionError::kConnectTimeout);
}

TEST(FluidFidelityTest, MidTransferLinkDownStallsAndHealResumes) {
  TwoNodeNet net{wan_link(10, 10)};
  net.topo->enable_fluid();
  const auto opts = tcp::TcpOptions{}.with_buffers(64 * kKiB);

  // Black out both directions during the transfer, then heal.
  net.sim.schedule_after(SimTime::seconds(1), [&] {
    net.topo->link(0).set_loss_rate(1.0);
    net.topo->link(1).set_loss_rate(1.0);
  });
  net.sim.schedule_after(SimTime::seconds(6), [&] {
    net.topo->link(0).set_loss_rate(0.0);
    net.topo->link(1).set_loss_rate(0.0);
  });
  const auto r =
      run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, 8 * kMiB, opts);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, 8 * kMiB);
  // ~5 s of dead air must show up in the elapsed time (8 MiB at ~9.7 Mbps
  // is ~6.9 s of streaming).
  EXPECT_GT(r.elapsed, SimTime::seconds(11));
}

TEST(FluidFidelityTest, MidTransferBrownoutThrottlesFluidRate) {
  const auto opts = tcp::TcpOptions{}.with_buffers(256 * kKiB);
  const auto baseline = transfer(wan_link(50, 10), true, 16 * kMiB, opts);
  ASSERT_TRUE(baseline.completed);

  TwoNodeNet net{wan_link(50, 10)};
  net.topo->enable_fluid();
  net.sim.schedule_after(SimTime::milliseconds(500), [&] {
    net.topo->link(0).set_rate(Bandwidth::mbps(5));
  });
  const auto r =
      run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, 16 * kMiB, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.elapsed, baseline.elapsed * 2);
}

TEST(FluidFidelityTest, SlowReaderBackpressuresAndResumes) {
  // The receiver drains nothing for 5 s: the pump must stall on the peer's
  // buffer (zero-window equivalent) and resume via the window-update path.
  TwoNodeNet net{wan_link(50, 5)};
  net.topo->enable_fluid();
  const auto opts = tcp::TcpOptions{}.with_buffers(64 * kKiB);
  constexpr std::uint64_t kBytes = 4 * kMiB;
  constexpr net::Port kPort = 5001;

  std::uint64_t received = 0;
  bool done = false;
  bool may_read = false;
  tcp::Connection::Ptr server;
  net.stack_b->listen(kPort, [&](tcp::Connection::Ptr conn) {
    server = conn;
    conn->on_readable = [&, c = conn.get()] {
      if (may_read) {
        received += c->read(c->readable_bytes()).n;
      }
    };
    conn->on_eof = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
      done = true;
    };
  }, opts);

  auto client = net.stack_a->connect(net.b, kPort, opts);
  std::uint64_t queued = 0;
  const auto pump = [&, c = client.get()] {
    while (queued < kBytes) {
      const std::uint64_t n = c->write_synthetic(kBytes - queued);
      queued += n;
      if (n == 0) {
        break;
      }
    }
    if (queued == kBytes) {
      c->close();
    }
  };
  client->on_connected = pump;
  client->on_writable = pump;

  net.sim.schedule_after(SimTime::seconds(5), [&] {
    may_read = true;
    if (server != nullptr) {
      received += server->read(server->readable_bytes()).n;
    }
  });
  net.sim.run(net.sim.now() + SimTime::seconds(120));
  EXPECT_TRUE(done);
  EXPECT_EQ(received, kBytes);
}

TEST(FluidFidelityTest, AbortTearsDownFluidFlow) {
  TwoNodeNet net{wan_link(10, 10)};
  net.topo->enable_fluid();
  const auto opts = tcp::TcpOptions{}.with_buffers(64 * kKiB);
  constexpr net::Port kPort = 5001;

  tcp::ConnectionError server_err = tcp::ConnectionError::kNone;
  net.stack_b->listen(kPort, [&](tcp::Connection::Ptr conn) {
    conn->on_readable = [c = conn.get()] { c->read(c->readable_bytes()); };
    conn->on_error = [&](tcp::ConnectionError e) { server_err = e; };
  }, opts);

  auto client = net.stack_a->connect(net.b, kPort, opts);
  client->on_connected = [c = client.get()] {
    c->write_synthetic(32 * kMiB);
  };
  net.sim.schedule_after(SimTime::seconds(2),
                         [c = client.get()] { c->abort(); });
  net.sim.run(net.sim.now() + SimTime::seconds(10));

  EXPECT_EQ(server_err, tcp::ConnectionError::kReset);
  EXPECT_EQ(net.topo->fluid()->active_flows(), 0U);
}

TEST(FluidFidelityTest, MultiHopPathMatchesPacketFidelity) {
  // a -- r -- b chain: the fluid path walk must follow forwarding tables
  // through the router, and the middle hop's store-and-forward shows up in
  // the effective RTT in both fidelities.
  const auto build = [](bool fluid) {
    auto sim = std::make_unique<sim::Simulator>();
    auto topo = std::make_unique<net::Topology>(*sim, 7);
    const auto a = topo->add_node("a", "site-a");
    const auto r = topo->add_node("r", "site-r");
    const auto b = topo->add_node("b", "site-b");
    topo->add_duplex_link(a, r, wan_link(20, 10));
    topo->add_duplex_link(r, b, wan_link(10, 15));
    topo->compute_routes();
    if (fluid) {
      topo->enable_fluid();
    }
    auto sa = std::make_unique<tcp::TcpStack>(*topo, a);
    auto sb = std::make_unique<tcp::TcpStack>(*topo, b);
    const auto opts = tcp::TcpOptions{}.with_buffers(128 * kKiB);
    auto res = run_bulk_transfer(*sim, *sa, *sb, 8 * kMiB, opts);
    return res;
  };
  const auto packet = build(false);
  const auto fluid = build(true);
  ASSERT_TRUE(packet.completed);
  ASSERT_TRUE(fluid.completed);
  EXPECT_LT(relative_gap(packet.goodput.bits_per_second(),
                         fluid.goodput.bits_per_second()),
            0.10)
      << "packet=" << packet.goodput.str() << " fluid=" << fluid.goodput.str();
}

}  // namespace
}  // namespace lsl
