// Unit tests for the fluid (flow-level) engine: max-min solver edge cases,
// slow-start ramp / Mathis cap calibration against the analytic model, and
// incremental component re-solves matching from-scratch solves on random
// topologies.
#include "flow/fluid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "flow/tcp_model.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lsl::flow {
namespace {

constexpr double kMbps = 1e6;

FluidFlowSpec spec_on(std::vector<FluidLinkId> path,
                      SimTime rtt = SimTime::milliseconds(50),
                      std::uint64_t window = 64 * kMiB) {
  FluidFlowSpec spec;
  spec.path = std::move(path);
  spec.rtt = rtt;
  spec.window_bytes = window;          // huge by default: link-limited tests
  spec.initial_cwnd_segments = 0;      // no ramp unless a test asks for it
  return spec;
}

/// Advance the simulator's clock to `at` even when no event lands there.
void run_until(sim::Simulator& sim, SimTime at) {
  sim.schedule_at(at, [] {});
  sim.run(at);
}

TEST(FluidSolverTest, SingleFlowTakesBottleneckCapacity) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(100 * kMbps);
  const auto f = net.start_flow(spec_on({l}));
  EXPECT_DOUBLE_EQ(net.rate_bps(f), 0.0);  // idle until bytes are offered

  const std::uint64_t bytes = 10 * kMiB;
  net.add_bytes(f, bytes);
  EXPECT_DOUBLE_EQ(net.rate_bps(f), 100 * kMbps);

  SimTime done = SimTime::zero();
  net.notify_at(f, bytes, [&] { done = sim.now(); });
  sim.run();
  const double expect_s = static_cast<double>(bytes) * 8.0 / (100 * kMbps);
  EXPECT_NEAR(done.to_seconds(), expect_s, 1e-6);
  EXPECT_DOUBLE_EQ(net.rate_bps(f), 0.0);  // drained flows release share
}

TEST(FluidSolverTest, BottleneckChainTakesMinimumLink) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto a = net.add_link(100 * kMbps);
  const auto b = net.add_link(10 * kMbps);
  const auto c = net.add_link(50 * kMbps);
  const auto f = net.start_flow(spec_on({a, b, c}));
  net.add_bytes(f, kMiB);
  EXPECT_DOUBLE_EQ(net.rate_bps(f), 10 * kMbps);
}

TEST(FluidSolverTest, SharedLinkFairnessAcrossThreeFlows) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(90 * kMbps);
  const auto f1 = net.start_flow(spec_on({l}));
  const auto f2 = net.start_flow(spec_on({l}));
  const auto f3 = net.start_flow(spec_on({l}));
  net.add_bytes(f1, kMiB);
  EXPECT_DOUBLE_EQ(net.rate_bps(f1), 90 * kMbps);
  net.add_bytes(f2, kMiB);
  EXPECT_DOUBLE_EQ(net.rate_bps(f1), 45 * kMbps);
  net.add_bytes(f3, kMiB);
  EXPECT_NEAR(net.rate_bps(f1), 30 * kMbps, 1.0);
  EXPECT_NEAR(net.rate_bps(f2), 30 * kMbps, 1.0);
  EXPECT_NEAR(net.rate_bps(f3), 30 * kMbps, 1.0);
}

TEST(FluidSolverTest, CapLimitedFlowReleasesExcessToPeers) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(100 * kMbps);
  // 10 Mbit/s window cap: 62500 bytes over 50 ms.
  const auto capped = net.start_flow(spec_on({l}, SimTime::milliseconds(50),
                                             62500));
  const auto f2 = net.start_flow(spec_on({l}));
  const auto f3 = net.start_flow(spec_on({l}));
  net.add_bytes(capped, kMiB);
  net.add_bytes(f2, kMiB);
  net.add_bytes(f3, kMiB);
  EXPECT_NEAR(net.rate_bps(capped), 10 * kMbps, 1.0);
  EXPECT_NEAR(net.rate_bps(f2), 45 * kMbps, 1.0);
  EXPECT_NEAR(net.rate_bps(f3), 45 * kMbps, 1.0);
}

TEST(FluidSolverTest, PartialOverlapWaterFilling) {
  // A spans (x, y), B spans (y, z), C spans (z): classic chain. All links
  // 100 Mbit/s: the max-min allocation is 50/50/50.
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto x = net.add_link(100 * kMbps);
  const auto y = net.add_link(100 * kMbps);
  const auto z = net.add_link(100 * kMbps);
  const auto fa = net.start_flow(spec_on({x, y}));
  const auto fb = net.start_flow(spec_on({y, z}));
  const auto fc = net.start_flow(spec_on({z}));
  net.add_bytes(fa, kMiB);
  net.add_bytes(fb, kMiB);
  net.add_bytes(fc, kMiB);
  EXPECT_NEAR(net.rate_bps(fa), 50 * kMbps, 1.0);
  EXPECT_NEAR(net.rate_bps(fb), 50 * kMbps, 1.0);
  EXPECT_NEAR(net.rate_bps(fc), 50 * kMbps, 1.0);
}

TEST(FluidSolverTest, DepartureReleasesShareToResidualFlows) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(80 * kMbps);
  const auto f1 = net.start_flow(spec_on({l}));
  const auto f2 = net.start_flow(spec_on({l}));
  net.add_bytes(f1, 64 * kMiB);
  net.add_bytes(f2, 64 * kMiB);
  EXPECT_NEAR(net.rate_bps(f1), 40 * kMbps, 1.0);
  net.end_flow(f2);
  EXPECT_NEAR(net.rate_bps(f1), 80 * kMbps, 1.0);
  EXPECT_DOUBLE_EQ(net.rate_bps(f2), 0.0);  // stale id reads as dead
  EXPECT_FALSE(net.alive(f2));
}

TEST(FluidSolverTest, CompletionReleasesShareMidSim) {
  // A short flow drains and its share must flow back to the long one, which
  // then finishes earlier than a static split would predict.
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(100 * kMbps);
  const auto short_f = net.start_flow(spec_on({l}));
  const auto long_f = net.start_flow(spec_on({l}));
  const std::uint64_t short_bytes = 625'000;    // 0.1 s at half rate
  const std::uint64_t long_bytes = 2 * 625'000;
  net.add_bytes(short_f, short_bytes);
  net.add_bytes(long_f, long_bytes);
  SimTime short_done;
  SimTime long_done;
  net.notify_at(short_f, short_bytes, [&] { short_done = sim.now(); });
  net.notify_at(long_f, long_bytes, [&] { long_done = sim.now(); });
  sim.run();
  // Short: 625 KB at 50 Mbit/s = 0.1 s. Long: 0.1 s at 50 (625 KB done)
  // plus remaining 625 KB at the full 100 Mbit/s = 0.05 s.
  EXPECT_NEAR(short_done.to_seconds(), 0.1, 1e-6);
  EXPECT_NEAR(long_done.to_seconds(), 0.15, 1e-6);
}

TEST(FluidSolverTest, ZeroCapacityLinkStallsAndHealedLinkResumes) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(100 * kMbps, /*loss_rate=*/1.0);  // link down
  const auto f = net.start_flow(spec_on({l}));
  const std::uint64_t bytes = kMiB;
  net.add_bytes(f, bytes);
  EXPECT_DOUBLE_EQ(net.rate_bps(f), 0.0);
  SimTime done = SimTime::zero();
  net.notify_at(f, bytes, [&] { done = sim.now(); });
  run_until(sim, SimTime::seconds(5));
  EXPECT_EQ(done, SimTime::zero());  // stalled: no progress at all
  EXPECT_EQ(net.transmitted(f), 0u);
  net.set_link(l, 100 * kMbps, 0.0);  // heal
  EXPECT_DOUBLE_EQ(net.rate_bps(f), 100 * kMbps);
  sim.run();
  EXPECT_NEAR(done.to_seconds(), 5.0 + kMiB * 8.0 / (100 * kMbps), 1e-6);
}

TEST(FluidSolverTest, BrownoutReducesCapacityAndResolves) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(100 * kMbps);
  const auto f1 = net.start_flow(spec_on({l}));
  const auto f2 = net.start_flow(spec_on({l}));
  net.add_bytes(f1, 64 * kMiB);
  net.add_bytes(f2, 64 * kMiB);
  EXPECT_NEAR(net.rate_bps(f1), 50 * kMbps, 1.0);
  net.set_link(l, 10 * kMbps, 0.0);  // rate_factor 0.1 brownout
  EXPECT_NEAR(net.rate_bps(f1), 5 * kMbps, 1.0);
  EXPECT_NEAR(net.rate_bps(f2), 5 * kMbps, 1.0);
}

TEST(FluidSolverTest, MathisCapMatchesAnalyticModel) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(100 * kMbps, /*loss_rate=*/0.01);
  auto spec = spec_on({l}, SimTime::milliseconds(50));
  const auto f = net.start_flow(spec);
  net.add_bytes(f, kMiB);

  ConnectionParams params;
  params.rtt = spec.rtt;
  params.bottleneck = Bandwidth::gbps(1000);
  params.window_bytes = spec.window_bytes;
  params.loss_rate = 0.01;
  const double mathis = steady_rate(params).bits_per_second();
  ASSERT_LT(mathis, 99 * kMbps);  // the loss cap binds, not the link
  EXPECT_NEAR(net.rate_bps(f), mathis, 1.0);
  EXPECT_NEAR(net.cap_bps(f), mathis, 1.0);
}

TEST(FluidSolverTest, SlowStartRampMatchesAnalyticDataTime) {
  // A window-ramped fluid flow transmits cwnd bytes per RTT round exactly
  // like the analytic model, so sender-side completion must agree with
  // data_time minus the model's half-RTT delivery tail.
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(1000 * kMbps);
  FluidFlowSpec spec;
  spec.path = {l};
  spec.rtt = SimTime::milliseconds(100);
  spec.window_bytes = 512 * kKiB;
  spec.initial_cwnd_segments = 2;
  const auto f = net.start_flow(spec);
  const std::uint64_t bytes = 4 * kMiB;
  net.add_bytes(f, bytes);
  SimTime done;
  net.notify_at(f, bytes, [&] { done = sim.now(); });
  sim.run();

  ConnectionParams params;
  params.rtt = spec.rtt;
  params.bottleneck = Bandwidth::mbps(1000);
  params.window_bytes = spec.window_bytes;
  params.initial_cwnd_segments = 2;
  const double model_s =
      data_time(params, bytes).to_seconds() - spec.rtt.to_seconds() / 2.0;
  EXPECT_NEAR(done.to_seconds(), model_s, 1.5 * spec.rtt.to_seconds());
}

TEST(FluidSolverTest, IdleFlowConsumesNoShare) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(100 * kMbps);
  const auto busy = net.start_flow(spec_on({l}));
  const auto idle = net.start_flow(spec_on({l}));
  net.add_bytes(busy, 64 * kMiB);
  EXPECT_DOUBLE_EQ(net.rate_bps(busy), 100 * kMbps);
  EXPECT_DOUBLE_EQ(net.rate_bps(idle), 0.0);
  net.add_bytes(idle, kMiB);
  EXPECT_NEAR(net.rate_bps(busy), 50 * kMbps, 1.0);
}

TEST(FluidSolverTest, IncrementalResolveMatchesFromScratchOnRandomTopologies) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Simulator sim;
    FluidNetwork net(sim);
    Rng rng(seed * 7919);
    std::vector<FluidLinkId> links;
    for (int i = 0; i < 24; ++i) {
      links.push_back(net.add_link(rng.uniform(1.0, 200.0) * kMbps,
                                   rng.chance(0.2) ? rng.uniform(0.0, 0.02)
                                                   : 0.0));
    }
    std::vector<FluidFlowId> flows;
    SimTime clock = SimTime::zero();
    for (int op = 0; op < 200; ++op) {
      const double roll = rng.next_double();
      if (roll < 0.45 || flows.empty()) {
        // Arrive: random loop-free path of 1..4 links.
        std::vector<FluidLinkId> path;
        const std::size_t hops = 1 + rng.pick_index(4);
        while (path.size() < hops) {
          const FluidLinkId l = links[rng.pick_index(links.size())];
          if (std::find(path.begin(), path.end(), l) == path.end()) {
            path.push_back(l);
          }
        }
        auto spec = spec_on(std::move(path), SimTime::milliseconds(20),
                            rng.chance(0.5) ? 64 * kKiB : 64 * kMiB);
        const auto f = net.start_flow(spec);
        net.add_bytes(f, mib(1 + rng.pick_index(64)));
        flows.push_back(f);
      } else if (roll < 0.65) {
        // Depart.
        const std::size_t i = rng.pick_index(flows.size());
        net.end_flow(flows[i]);
        flows[i] = flows.back();
        flows.pop_back();
      } else if (roll < 0.85) {
        // Fault / heal a link.
        const FluidLinkId l = links[rng.pick_index(links.size())];
        if (rng.chance(0.3)) {
          net.set_link(l, net.link_capacity_bps(l), 1.0);  // down
        } else {
          net.set_link(l, rng.uniform(1.0, 200.0) * kMbps,
                       rng.uniform(0.0, 0.05));
        }
      } else {
        // Let time pass so markers fire and flows drain.
        clock += SimTime::milliseconds(1 + rng.pick_index(40));
        run_until(sim, clock);
      }
      EXPECT_LE(net.max_rate_error_for_test(), 1e-3)
          << "seed " << seed << " op " << op;
    }
  }
}

TEST(FluidSolverTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::vector<double>* rates_out) {
    sim::Simulator sim;
    FluidNetwork net(sim);
    const auto a = net.add_link(100 * kMbps);
    const auto b = net.add_link(30 * kMbps, 0.001);
    std::vector<FluidFlowId> flows;
    for (int i = 0; i < 6; ++i) {
      const auto f = net.start_flow(
          spec_on(i % 2 == 0 ? std::vector<FluidLinkId>{a, b}
                             : std::vector<FluidLinkId>{b}));
      net.add_bytes(f, mib(4 + i));
      flows.push_back(f);
    }
    run_until(sim, SimTime::milliseconds(700));
    for (const auto f : flows) {
      rates_out->push_back(net.rate_bps(f));
    }
  };
  std::vector<double> first;
  std::vector<double> second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);  // bitwise: no randomness anywhere in the engine
}

TEST(FluidSolverTest, StatsCountSolvesAndMarkers) {
  sim::Simulator sim;
  FluidNetwork net(sim);
  const auto l = net.add_link(100 * kMbps);
  const auto f = net.start_flow(spec_on({l}));
  net.add_bytes(f, kMiB);
  net.notify_at(f, kMiB, [] {});
  sim.run();
  EXPECT_EQ(net.stats().flows_started, 1u);
  // Only the activation solves; the drain resolve finds no residual active
  // flows and short-circuits.
  EXPECT_EQ(net.stats().solves, 1u);
  EXPECT_EQ(net.stats().markers_fired, 1u);
  EXPECT_EQ(net.active_flows(), 0u);
}

}  // namespace
}  // namespace lsl::flow
