// End-to-end integration: the control plane (NWS measurement -> cost
// matrix -> minimax scheduler) driving the data plane (LSL loose source
// routes / depot route tables) over the packet-level simulator -- a
// miniature of the paper's section 4.2 deployment. The scheduler runs at
// the calibrated eps = 0.25 (see DESIGN.md): probe transfers are partly
// ramp-dominated, so low-RTT doglegs always measure a little faster and a
// smaller margin would relay nearly every pair.
#include <gtest/gtest.h>

#include <map>

#include "exp/harness.hpp"
#include "nws/monitor.hpp"
#include "sched/scheduler.hpp"
#include "util/stats.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;
using exp::SimHarness;

/// A five-site mini-grid with one pathologically routed pair: site A and
/// site E have a terrible direct link, but good paths through site C.
struct MiniGrid {
  SimHarness harness{2024};
  std::map<std::string, net::NodeId> hosts;

  net::NodeId operator[](const std::string& name) {
    return hosts.at(name);
  }

  MiniGrid() {
    for (const char* name : {"a", "b", "c", "d", "e"}) {
      hosts[name] = harness.add_host(std::string(name) + ".edu",
                                     std::string(name) + ".edu");
    }
    const auto link = [&](const char* x, const char* y, double mbit,
                          SimTime delay) {
      net::LinkConfig cfg;
      cfg.rate = Bandwidth::mbps(mbit);
      cfg.propagation_delay = delay;
      cfg.queue_capacity_bytes = mib(4);
      cfg.loss_rate = 1e-5;
      harness.add_link(hosts.at(x), hosts.at(y), cfg);
    };
    // Good core connectivity through c.
    link("a", "c", 100, 10_ms);
    link("c", "e", 100, 10_ms);
    link("b", "c", 100, 8_ms);
    link("c", "d", 100, 8_ms);
    // The bad pair: a--e direct exists but is slow.
    link("a", "e", 6, 40_ms);
    // Other direct paths are decent.
    link("a", "b", 80, 12_ms);
    link("d", "e", 80, 12_ms);

    session::DepotConfig cfg;
    cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(2));
    cfg.user_buffer_bytes = mib(8);
    harness.deploy(cfg);
    // Pin direct routes onto direct links where both exist.
    auto& topo = harness.topology();
    topo.node(hosts.at("a")).set_route(hosts.at("e"),
                                       topo.link_between(hosts.at("a"),
                                                         hosts.at("e")));
    topo.node(hosts.at("e")).set_route(hosts.at("a"),
                                       topo.link_between(hosts.at("e"),
                                                         hosts.at("a")));
  }

  /// Measure achievable bandwidth per pair with quick probe transfers and
  /// build the scheduler's matrix from the session layer's own machinery.
  sched::CostMatrix measure_matrix() {
    // Probe ground truth: run a short transfer per pair and record goodput.
    // (The full system uses the NWS monitor; here the probes themselves are
    // packet-level, making this a true closed loop.)
    const std::size_t n = harness.host_count();
    sched::CostMatrix matrix(n);
    for (std::size_t i = 0; i < n; ++i) {
      matrix.set_label(i, harness.topology().node(i).name(),
                       harness.topology().node(i).site());
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) {
          continue;
        }
        session::TransferSpec probe;
        probe.dst = static_cast<net::NodeId>(j);
        probe.payload_bytes = kib(256);
        probe.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
        const auto r = harness.run_transfer(static_cast<net::NodeId>(i),
                                            probe, 120_s);
        EXPECT_TRUE(r.completed);
        if (r.completed) {
          matrix.set_bandwidth(i, j, r.goodput);
        }
      }
    }
    return matrix;
  }
};

TEST(IntegrationTest, SchedulerFindsTheRescuePathFromRealProbes) {
  MiniGrid grid;
  const auto matrix = grid.measure_matrix();
  const sched::Scheduler scheduler(matrix, {.epsilon = 0.25});

  const auto decision = scheduler.route(grid["a"], grid["e"]);
  ASSERT_TRUE(decision.uses_depots());
  // The rescue path must run through c.
  bool through_c = false;
  for (const auto hop : decision.via()) {
    through_c |= hop == grid["c"];
  }
  EXPECT_TRUE(through_c);

  // Well-connected pairs stay direct.
  EXPECT_FALSE(scheduler.route(grid["a"], grid["b"]).uses_depots());
  EXPECT_FALSE(scheduler.route(grid["d"], grid["e"]).uses_depots());
}

TEST(IntegrationTest, ScheduledPathBeatsDirectWhenExecuted) {
  MiniGrid grid;
  const auto matrix = grid.measure_matrix();
  const sched::Scheduler scheduler(matrix, {.epsilon = 0.25});
  const auto decision = scheduler.route(grid["a"], grid["e"]);
  ASSERT_TRUE(decision.uses_depots());

  session::TransferSpec direct;
  direct.dst = grid["e"];
  direct.payload_bytes = mib(4);
  direct.tcp = tcp::TcpOptions{}.with_buffers(mib(2));
  const auto r_direct = grid.harness.run_transfer(grid["a"], direct);

  session::TransferSpec scheduled = direct;
  scheduled.via = decision.via();
  const auto r_scheduled = grid.harness.run_transfer(grid["a"], scheduled);

  ASSERT_TRUE(r_direct.completed);
  ASSERT_TRUE(r_scheduled.completed);
  // Direct is capped by the 6 Mbit/s link; the relay rides 100 Mbit legs.
  EXPECT_GT(r_scheduled.goodput.bits_per_second(),
            3.0 * r_direct.goodput.bits_per_second());
}

TEST(IntegrationTest, HopByHopRouteTablesMatchSourceRouting) {
  // The paper's second forwarding mode: the MMP tree reduced to
  // destination/next-hop tuples consumed by the depots. Install the
  // scheduler's route tables on every depot, then send with *no* loose
  // source route: forwarding decisions happen hop by hop.
  MiniGrid grid;
  const auto matrix = grid.measure_matrix();
  const sched::Scheduler scheduler(matrix, {.epsilon = 0.25});
  for (std::size_t node = 0; node < grid.harness.host_count(); ++node) {
    grid.harness.depot(node).set_route_table(scheduler.route_table_for(node));
  }

  // Source-route the first hop only (the source has no depot logic of its
  // own): send to the first hop of a's tree toward e; depots do the rest.
  const auto decision = scheduler.route(grid["a"], grid["e"]);
  ASSERT_TRUE(decision.uses_depots());
  const auto first_hop = decision.via().front();

  session::TransferSpec spec;
  spec.dst = grid["e"];
  spec.via = {first_hop};  // beyond this, route tables decide
  spec.payload_bytes = mib(2);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(2));
  const auto r = grid.harness.run_transfer(grid["a"], spec);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(2));
  // The relay ran at core speed, not at the 6 Mbit direct link's.
  EXPECT_GT(r.goodput.megabits_per_second(), 15.0);
}

TEST(IntegrationTest, NwsMonitorClosesTheLoopOnSyntheticTruth) {
  // Monitor -> matrix -> scheduler -> decision, with the monitor fed from a
  // truth function whose best a->e route is via c (consistent with the
  // packet topology above).
  const std::vector<std::string> sites{"a.edu", "b.edu", "c.edu", "d.edu",
                                       "e.edu"};
  nws::PerformanceMonitor monitor(sites, nws::NoiseModel{}, 5);
  const auto truth = [](std::size_t i, std::size_t j) {
    if ((i == 0 && j == 4) || (i == 4 && j == 0)) {
      return Bandwidth::mbps(5);  // the bad pair
    }
    return Bandwidth::mbps(60);
  };
  for (int epoch = 0; epoch < 15; ++epoch) {
    monitor.observe_epoch(truth);
  }
  const sched::Scheduler scheduler(monitor.build_matrix(), {.epsilon = 0.1});
  const auto decision = scheduler.route(0, 4);
  EXPECT_TRUE(decision.uses_depots());
  EXPECT_FALSE(scheduler.route(0, 1).uses_depots());
}

}  // namespace
}  // namespace lsl
