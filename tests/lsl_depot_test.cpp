#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "lsl/depot.hpp"
#include "lsl/endpoint.hpp"
#include "util/units.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;
using exp::SimHarness;
using session::DepotConfig;
using session::TransferSpec;

net::LinkConfig wan(double mbit, SimTime one_way, double loss = 0.0,
                    std::uint64_t queue = mib(4)) {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(mbit);
  cfg.propagation_delay = one_way;
  cfg.queue_capacity_bytes = queue;
  cfg.loss_rate = loss;
  return cfg;
}

DepotConfig depot_cfg(std::uint64_t tcp_buf, std::uint64_t user_buf) {
  DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(tcp_buf);
  cfg.user_buffer_bytes = user_buf;
  return cfg;
}

/// src(0) -- depot(1) -- dst(2), plus a direct src--dst link.
struct TriangleNet {
  SimHarness harness;
  net::NodeId src, depot, dst;

  TriangleNet(const net::LinkConfig& leg1, const net::LinkConfig& leg2,
              const net::LinkConfig& direct, const DepotConfig& cfg,
              std::uint64_t seed = 21)
      : harness(seed) {
    src = harness.add_host("src", "site-a");
    depot = harness.add_host("depot", "site-m");
    dst = harness.add_host("dst", "site-b");
    harness.add_link(src, depot, leg1);
    harness.add_link(depot, dst, leg2);
    harness.add_link(src, dst, direct);
    harness.deploy(cfg);
    // Pin the direct route onto the direct link (compute_routes may prefer
    // a lower-delay two-hop path otherwise).
    auto& topo = harness.topology();
    topo.node(src).set_route(dst, topo.link_between(src, dst));
    topo.node(dst).set_route(src, topo.link_between(dst, src));
  }
};

TEST(DepotTest, DirectSessionDelivers) {
  TriangleNet net(wan(100, 10_ms), wan(100, 10_ms), wan(100, 20_ms),
                  depot_cfg(mib(1), mib(2)));
  TransferSpec spec;
  spec.dst = net.dst;
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = net.harness.run_transfer(net.src, spec);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(1));
  EXPECT_EQ(net.harness.depot(net.dst).stats().sessions_delivered, 1u);
}

TEST(DepotTest, RelayedSessionDeliversExactly) {
  TriangleNet net(wan(100, 10_ms), wan(100, 10_ms), wan(100, 20_ms),
                  depot_cfg(mib(1), mib(2)));
  TransferSpec spec;
  spec.dst = net.dst;
  spec.via = {net.depot};
  spec.payload_bytes = mib(4);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = net.harness.run_transfer(net.src, spec);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(4));
  const auto& ds = net.harness.depot(net.depot).stats();
  EXPECT_EQ(ds.sessions_relayed, 1u);
  EXPECT_EQ(ds.bytes_relayed, mib(4));
  EXPECT_EQ(net.harness.depot(net.dst).stats().sessions_delivered, 1u);
}

TEST(DepotTest, MultiDepotChainDelivers) {
  SimHarness h(5);
  const auto a = h.add_host("a");
  const auto d1 = h.add_host("d1");
  const auto d2 = h.add_host("d2");
  const auto b = h.add_host("b");
  h.add_link(a, d1, wan(100, 5_ms));
  h.add_link(d1, d2, wan(100, 5_ms));
  h.add_link(d2, b, wan(100, 5_ms));
  h.deploy(depot_cfg(mib(1), mib(2)));
  TransferSpec spec;
  spec.dst = b;
  spec.via = {d1, d2};
  spec.payload_bytes = mib(2);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = h.run_transfer(a, spec);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(2));
  EXPECT_EQ(h.depot(d1).stats().sessions_relayed, 1u);
  EXPECT_EQ(h.depot(d2).stats().sessions_relayed, 1u);
}

TEST(DepotTest, RouteTableForwardingWithoutSourceRoute) {
  // No loose source route: the depot's route table sends dst-bound sessions
  // through the next hop. Source sends "direct" to dst but its own node's
  // route table at the session layer is what the scheduler configures --
  // here we emulate hop-by-hop forwarding by directing the source at the
  // depot with an empty via list and a route entry dst -> dst.
  SimHarness h(6);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan(100, 5_ms));
  h.add_link(d, b, wan(100, 5_ms));
  h.deploy(depot_cfg(mib(1), mib(2)));
  // Depot d forwards sessions for b directly (default), but check the
  // route-table override path: route b via b (expected next hop).
  session::RouteTable table;
  table.set(b, b);
  h.depot(d).set_route_table(table);
  TransferSpec spec;
  spec.dst = b;
  spec.via = {d};  // reach the depot; beyond that, its table decides
  spec.payload_bytes = kib(256);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = h.run_transfer(a, spec);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, kib(256));
}

TEST(DepotTest, LogisticalEffectSplitBeatsDirectOnLossyHighRttPath) {
  // The paper's core claim: over a high bandwidth-delay path with loss,
  // a relay that halves each connection's RTT raises end-to-end throughput.
  // Loss is set high enough (1e-3) that the transfer spends most of its
  // life at the congestion-avoidance equilibrium, where throughput scales
  // as 1/RTT (Mathis), rather than in the slow-start transient.
  const double loss = 1e-3;
  TriangleNet net(wan(400, 23_ms, loss), wan(400, 22_ms, loss),
                  wan(400, 35_ms, loss), depot_cfg(mib(8), mib(16)));
  tcp::TcpOptions opts = tcp::TcpOptions{}.with_buffers(mib(8));

  TransferSpec direct;
  direct.dst = net.dst;
  direct.payload_bytes = mib(16);
  direct.tcp = opts;
  const auto r_direct = net.harness.run_transfer(net.src, direct);

  TransferSpec lsl = direct;
  lsl.via = {net.depot};
  const auto r_lsl = net.harness.run_transfer(net.src, lsl);

  ASSERT_TRUE(r_direct.completed);
  ASSERT_TRUE(r_lsl.completed);
  EXPECT_GT(r_lsl.goodput.bits_per_second(),
            1.15 * r_direct.goodput.bits_per_second());
}

TEST(DepotTest, DepotBufferBoundsPipeline) {
  // Fast first leg, slow second leg: the source can run ahead of the
  // bottleneck only until the depot pipeline (kernel + user buffers) fills.
  const auto tcp_buf = kib(512);
  const auto user_buf = mib(1);
  TriangleNet net(wan(400, 5_ms), wan(20, 5_ms), wan(400, 10_ms),
                  depot_cfg(tcp_buf, user_buf));
  TransferSpec spec;
  spec.dst = net.dst;
  spec.via = {net.depot};
  spec.payload_bytes = mib(16);
  spec.tcp = tcp::TcpOptions{}.with_buffers(tcp_buf);

  const auto handle = net.harness.launch(net.src, spec);
  // After 2 seconds the fast leg would have moved ~50 MB unconstrained, but
  // the pipeline holds at most user_buf + 2 kernel buffers + what the slow
  // leg (20 Mbit/s) has drained.
  net.harness.simulator().run(net.harness.simulator().now() + 2_s);
  const auto& ds = net.harness.depot(net.depot).stats();
  const std::uint64_t drained_upper = 2ULL * 20'000'000 / 8;  // 2 s at 20 Mbit
  const std::uint64_t pipeline_cap = user_buf + 4 * tcp_buf;
  EXPECT_LE(ds.bytes_relayed, drained_upper + pipeline_cap);
  const auto r = net.harness.wait(handle, 600_s);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(16));
}

TEST(DepotTest, AdmissionControlRefusesExcessSessions) {
  SimHarness h(8);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan(50, 5_ms));
  h.add_link(d, b, wan(50, 5_ms));
  auto cfg = depot_cfg(kib(64), kib(256));
  cfg.max_sessions = 2;
  h.deploy(cfg);
  TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(4);
  spec.tcp = tcp::TcpOptions{};
  for (int i = 0; i < 5; ++i) {
    h.launch(a, spec);
  }
  h.wait_all(120_s);
  const auto& ds = h.depot(d).stats();
  // sessions_accepted counts only admitted sessions; with max_sessions = 2
  // the burst of 5 must see refusals, and admitted sessions all relay.
  EXPECT_GT(ds.sessions_refused, 0u);
  EXPECT_EQ(ds.sessions_accepted + ds.sessions_refused, 5u);
  EXPECT_EQ(ds.sessions_relayed, ds.sessions_accepted);
}

TEST(DepotTest, AsyncSessionStoredAtLastDepotAndFetched) {
  SimHarness h(9);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan(100, 5_ms));
  h.add_link(d, b, wan(100, 5_ms));
  h.deploy(depot_cfg(mib(1), mib(8)));

  TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(2);
  spec.async_session = true;
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));

  auto source = session::LslSource::start(h.stack(a), spec, h.rng());
  const auto sid = source->session_id();
  h.simulator().run(h.simulator().now() + 60_s);

  // Stored at the depot, not delivered to b.
  ASSERT_TRUE(h.depot(d).stored_bytes(sid).has_value());
  EXPECT_EQ(*h.depot(d).stored_bytes(sid), mib(2));
  EXPECT_EQ(h.depot(b).stats().sessions_delivered, 0u);

  // The receiver fetches it later by session id.
  bool fetched = false;
  std::uint64_t fetched_bytes = 0;
  auto fetcher = session::AsyncFetcher::start(
      h.stack(b), d, sid, tcp::TcpOptions{}.with_buffers(mib(1)));
  fetcher->on_complete = [&](const session::AsyncFetcher::Result& r) {
    fetched = true;
    fetched_bytes = r.bytes;
  };
  h.simulator().run(h.simulator().now() + 60_s);
  EXPECT_TRUE(fetched);
  EXPECT_EQ(fetched_bytes, mib(2));
}

TEST(DepotTest, FetchOfUnknownSessionFails) {
  SimHarness h(10);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  h.add_link(a, d, wan(100, 5_ms));
  h.deploy(depot_cfg(mib(1), mib(2)));
  session::SessionId bogus;
  bogus.bytes.fill(7);
  bool errored = false;
  auto fetcher =
      session::AsyncFetcher::start(h.stack(a), d, bogus, tcp::TcpOptions{});
  fetcher->on_error = [&] { errored = true; };
  h.simulator().run(h.simulator().now() + 30_s);
  EXPECT_TRUE(errored);
}

TEST(DepotTest, MulticastTreeStagesDataToAllLeaves) {
  // root depot (r) fans out to two mid depots, each with one leaf sink.
  SimHarness h(11);
  const auto src = h.add_host("src");
  const auto root = h.add_host("root");
  const auto m1 = h.add_host("m1");
  const auto m2 = h.add_host("m2");
  const auto l1 = h.add_host("l1");
  const auto l2 = h.add_host("l2");
  h.add_link(src, root, wan(100, 5_ms));
  h.add_link(root, m1, wan(100, 5_ms));
  h.add_link(root, m2, wan(100, 5_ms));
  h.add_link(m1, l1, wan(100, 5_ms));
  h.add_link(m2, l2, wan(100, 5_ms));
  h.deploy(depot_cfg(mib(1), mib(2)));

  int deliveries = 0;
  std::uint64_t delivered_bytes = 0;
  for (const auto leaf : {l1, l2}) {
    h.depot(leaf).on_session_complete =
        [&](const session::SessionRecord& rec) {
          ++deliveries;
          delivered_bytes += rec.bytes;
        };
  }

  session::MulticastTree tree;
  tree.entries = {{root, 0}, {m1, 0}, {m2, 0}, {l1, 1}, {l2, 2}};
  TransferSpec spec;
  spec.dst = root;
  spec.multicast = tree;
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  session::LslSource::start(h.stack(src), spec, h.rng());
  h.simulator().run(h.simulator().now() + 120_s);
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(delivered_bytes, 2 * mib(1));
}

TEST(DepotTest, ConcurrentRelaySessionsAllComplete) {
  SimHarness h(12);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan(100, 10_ms));
  h.add_link(d, b, wan(100, 10_ms));
  h.deploy(depot_cfg(kib(256), mib(1)));
  TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(kib(256));
  for (int i = 0; i < 8; ++i) {
    h.launch(a, spec);
  }
  const auto unfinished = h.wait_all(300_s);
  EXPECT_EQ(unfinished, 0u);
  EXPECT_EQ(h.depot(d).stats().sessions_relayed, 8u);
  EXPECT_EQ(h.depot(b).stats().bytes_delivered, 8 * mib(1));
}

class RelayLossIntegrityTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RelayLossIntegrityTest, RelayDeliversExactByteCountUnderLoss) {
  // Regression: the EOF callback used to fire synchronously from inside the
  // relay's own read() call; the relay then observed its buffers as drained
  // before accounting the chunk in hand and closed the session short (up to
  // one 256 KB relay chunk lost). Exercise relays across loss seeds.
  SimHarness h(GetParam());
  const auto a = h.add_host("a", "site-a");
  const auto d = h.add_host("d", "site-m");
  const auto b = h.add_host("b", "site-b");
  net::LinkConfig link = wan(100, 20_ms, /*loss=*/3e-4, mib(8));
  h.add_link(a, d, link);
  h.add_link(d, b, link);
  h.deploy(depot_cfg(mib(8), mib(16)));
  TransferSpec spec;
  spec.dst = b;
  spec.via = {d};
  spec.payload_bytes = mib(8);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(8));
  const auto r = h.run_transfer(a, spec);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(8));
  EXPECT_EQ(h.depot(d).stats().bytes_relayed, mib(8));
}

INSTANTIATE_TEST_SUITE_P(LossSeeds, RelayLossIntegrityTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(DepotTest, SessionHeaderSurvivesRelayRewrite) {
  // Three-hop loose source route: each depot pops itself off the LSRR; the
  // final delivered header must carry the original session id and empty
  // route.
  SimHarness h(13);
  const auto a = h.add_host("a");
  const auto d1 = h.add_host("d1");
  const auto d2 = h.add_host("d2");
  const auto b = h.add_host("b");
  h.add_link(a, d1, wan(100, 2_ms));
  h.add_link(d1, d2, wan(100, 2_ms));
  h.add_link(d2, b, wan(100, 2_ms));
  h.deploy(depot_cfg(mib(1), mib(2)));

  session::SessionRecord delivered;
  h.depot(b).on_session_complete =
      [&](const session::SessionRecord& rec) { delivered = rec; };

  TransferSpec spec;
  spec.dst = b;
  spec.via = {d1, d2};
  spec.payload_bytes = kib(100);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  auto source = session::LslSource::start(h.stack(a), spec, h.rng());
  h.simulator().run(h.simulator().now() + 60_s);

  EXPECT_EQ(delivered.header.session_id, source->session_id());
  EXPECT_TRUE(delivered.header.loose_route.empty());
  EXPECT_EQ(delivered.header.src, a);
  EXPECT_EQ(delivered.header.dst, b);
  EXPECT_EQ(delivered.header.payload_bytes, kib(100));
  EXPECT_EQ(delivered.bytes, kib(100));
}


TEST(DepotTest, SelfHopsInSourceRouteAreCollapsed) {
  // A loose source route naming the same depot twice must not make the
  // depot open connections to itself; it relays once and forwards on.
  SimHarness h(14);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto b = h.add_host("b");
  h.add_link(a, d, wan(100, 5_ms));
  h.add_link(d, b, wan(100, 5_ms));
  h.deploy(depot_cfg(mib(1), mib(2)));
  TransferSpec spec;
  spec.dst = b;
  spec.via = {d, d, d};
  spec.payload_bytes = mib(1);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = h.run_transfer(a, spec);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(1));
  EXPECT_EQ(h.depot(d).stats().sessions_relayed, 1u);
  EXPECT_EQ(h.depot(d).stats().sessions_accepted, 1u);
}

TEST(DepotTest, LoopbackSessionToOwnHostDelivers) {
  // A session whose destination is the source's own host exercises the
  // loopback delivery path (deferred through the event loop).
  SimHarness h(15);
  const auto a = h.add_host("a");
  const auto b = h.add_host("b");
  h.add_link(a, b, wan(100, 5_ms));
  h.deploy(depot_cfg(mib(1), mib(2)));
  TransferSpec spec;
  spec.dst = a;  // back to ourselves
  spec.payload_bytes = kib(512);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = h.run_transfer(a, spec);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, kib(512));
}

}  // namespace
}  // namespace lsl
