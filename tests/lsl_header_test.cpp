#include <gtest/gtest.h>

#include "lsl/header.hpp"
#include "util/rng.hpp"

namespace lsl::session {
namespace {

SessionHeader sample_header() {
  Rng rng(77);
  SessionHeader h;
  h.session_id = SessionId::random(rng);
  h.src = 3;
  h.src_port = 40000;
  h.dst = 9;
  h.dst_port = kLslPort;
  h.payload_bytes = 64ULL * 1024 * 1024;
  return h;
}

TEST(SessionIdTest, RandomIdsDiffer) {
  Rng rng(1);
  const auto a = SessionId::random(rng);
  const auto b = SessionId::random(rng);
  EXPECT_NE(a, b);
}

TEST(SessionIdTest, StringIs32HexChars) {
  Rng rng(2);
  const auto id = SessionId::random(rng);
  EXPECT_EQ(id.str().size(), 32u);
}

TEST(SessionIdTest, HashConsistent) {
  Rng rng(3);
  const auto id = SessionId::random(rng);
  SessionId copy = id;
  EXPECT_EQ(SessionIdHash{}(id), SessionIdHash{}(copy));
}

TEST(HeaderCodecTest, FixedHeaderRoundTrip) {
  const auto h = sample_header();
  const auto bytes = encode(h);
  EXPECT_EQ(bytes.size(), kFixedHeaderBytes);
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(HeaderCodecTest, LooseSourceRouteRoundTrip) {
  auto h = sample_header();
  h.loose_route = {4, 5, 6};
  const auto bytes = encode(h);
  EXPECT_EQ(bytes.size(), kFixedHeaderBytes + 4 + 12);
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->loose_route, h.loose_route);
  EXPECT_EQ(*back, h);
}

TEST(HeaderCodecTest, MulticastTreeRoundTrip) {
  auto h = sample_header();
  MulticastTree tree;
  tree.entries = {{10, 0}, {11, 0}, {12, 0}, {13, 1}, {14, 1}};
  h.multicast = tree;
  const auto back = decode(encode(h));
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->multicast.has_value());
  EXPECT_EQ(back->multicast->entries.size(), 5u);
  EXPECT_EQ(*back, h);
}

TEST(HeaderCodecTest, AsyncFlagRoundTrip) {
  auto h = sample_header();
  h.async_session = true;
  const auto back = decode(encode(h));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->async_session);
}

TEST(HeaderCodecTest, AllOptionsTogether) {
  auto h = sample_header();
  h.loose_route = {1, 2};
  h.async_session = true;
  MulticastTree tree;
  tree.entries = {{7, 0}, {8, 0}};
  h.multicast = tree;
  h.type = SessionType::kData;
  const auto bytes = encode(h);
  EXPECT_EQ(bytes.size(), h.encoded_size());
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(HeaderCodecTest, FetchTypeRoundTrip) {
  auto h = sample_header();
  h.type = SessionType::kFetch;
  const auto back = decode(encode(h));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, SessionType::kFetch);
}

TEST(HeaderCodecTest, PeekLengthNeedsPreamble) {
  const auto bytes = encode(sample_header());
  EXPECT_FALSE(peek_header_length({bytes.data(), 7}).has_value());
  const auto len = peek_header_length({bytes.data(), 8});
  ASSERT_TRUE(len.has_value());
  EXPECT_EQ(*len, bytes.size());
}

TEST(HeaderCodecTest, BadMagicRejected) {
  auto bytes = encode(sample_header());
  bytes[0] = std::byte{'X'};
  EXPECT_FALSE(peek_header_length(bytes).has_value());
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(HeaderCodecTest, TruncatedHeaderRejected) {
  const auto bytes = encode(sample_header());
  EXPECT_FALSE(decode({bytes.data(), bytes.size() - 1}).has_value());
}

TEST(HeaderCodecTest, CorruptOptionLengthRejected) {
  auto h = sample_header();
  h.loose_route = {4};
  auto bytes = encode(h);
  // Option length field says 8 bytes but only 4 remain.
  bytes[kFixedHeaderBytes + 2] = std::byte{0};
  bytes[kFixedHeaderBytes + 3] = std::byte{8};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(HeaderCodecTest, UnknownOptionSkipped) {
  auto h = sample_header();
  auto bytes = encode(h);
  // Append an unknown TLV (type 99, length 4) and patch header_length.
  const std::size_t new_len = bytes.size() + 8;
  bytes[6] = std::byte{static_cast<unsigned char>(new_len >> 8)};
  bytes[7] = std::byte{static_cast<unsigned char>(new_len & 0xFF)};
  bytes.push_back(std::byte{0});
  bytes.push_back(std::byte{99});
  bytes.push_back(std::byte{0});
  bytes.push_back(std::byte{4});
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(std::byte{0xAB});
  }
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dst, h.dst);
}

TEST(MulticastTreeTest, ChildrenOf) {
  MulticastTree tree;
  tree.entries = {{10, 0}, {11, 0}, {12, 0}, {13, 1}, {14, 1}};
  EXPECT_EQ(tree.children_of(0), (std::vector<net::NodeId>{11, 12}));
  EXPECT_EQ(tree.children_of(1), (std::vector<net::NodeId>{13, 14}));
  EXPECT_TRUE(tree.children_of(2).empty());
}

TEST(MulticastTreeTest, Find) {
  MulticastTree tree;
  tree.entries = {{10, 0}, {11, 0}};
  EXPECT_EQ(tree.find(11).value(), 1u);
  EXPECT_FALSE(tree.find(99).has_value());
}

}  // namespace
}  // namespace lsl::session
