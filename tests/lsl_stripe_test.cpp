// Striped LSL sessions: PSockets-style parallelism composed with
// logistical forwarding (paper section 5: "our approach can only benefit
// from this work").
#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "lsl/header.hpp"

namespace lsl::session {
namespace {

using namespace lsl::time_literals;
using exp::SimHarness;

TEST(StripeHeaderTest, RoundTrip) {
  Rng rng(5);
  SessionHeader h;
  h.session_id = SessionId::random(rng);
  h.src = 1;
  h.dst = 2;
  h.dst_port = kLslPort;
  h.payload_bytes = mib(4);
  h.stripe = StripeInfo{2, 4};
  const auto back = decode(encode(h));
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->stripe.has_value());
  EXPECT_EQ(back->stripe->index, 2);
  EXPECT_EQ(back->stripe->count, 4);
  EXPECT_EQ(*back, h);
}

TEST(StripeHeaderTest, RejectsInvalidStripe) {
  Rng rng(5);
  SessionHeader h;
  h.session_id = SessionId::random(rng);
  h.stripe = StripeInfo{3, 3};  // index >= count
  const auto bytes = encode(h);
  EXPECT_FALSE(decode(bytes).has_value());
}

struct StripeNet {
  SimHarness h{61};
  net::NodeId a, d, b;

  explicit StripeNet(double loss = 0.0) {
    a = h.add_host("a", "site-a");
    d = h.add_host("d", "core");
    b = h.add_host("b", "site-b");
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(400);
    link.propagation_delay = 20_ms;
    link.queue_capacity_bytes = mib(8);
    link.loss_rate = loss;
    h.add_link(a, d, link);
    h.add_link(d, b, link);
    link.propagation_delay = 40_ms;
    h.add_link(a, b, link);
    DepotConfig cfg;
    cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(8));
    h.deploy(cfg);
    auto& topo = h.topology();
    topo.node(a).set_route(b, topo.link_between(a, b));
    topo.node(b).set_route(a, topo.link_between(b, a));
  }
};

TEST(StripedSessionTest, DirectStripesDeliverExactlyOnce) {
  StripeNet net;
  TransferSpec spec;
  spec.dst = net.b;
  spec.payload_bytes = mib(4) + 999;  // not divisible by stripe count
  spec.streams = 4;
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = net.h.run_transfer(net.a, spec);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(4) + 999);
  // One logical session despite four connections.
  EXPECT_EQ(net.h.depot(net.b).stats().sessions_delivered, 1u);
}

TEST(StripedSessionTest, RelayedStripesDeliverExactlyOnce) {
  StripeNet net;
  TransferSpec spec;
  spec.dst = net.b;
  spec.via = {net.d};
  spec.payload_bytes = mib(4);
  spec.streams = 3;
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto r = net.h.run_transfer(net.a, spec);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(4));
  EXPECT_EQ(net.h.depot(net.d).stats().sessions_relayed, 3u);  // per stripe
  EXPECT_EQ(net.h.depot(net.b).stats().sessions_delivered, 1u);
}

TEST(StripedSessionTest, SingleStreamHasNoStripeOption) {
  StripeNet net;
  SessionRecord delivered;
  net.h.depot(net.b).on_session_complete =
      [&](const SessionRecord& rec) { delivered = rec; };
  TransferSpec spec;
  spec.dst = net.b;
  spec.payload_bytes = kib(64);
  spec.streams = 1;
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  (void)net.h.run_transfer(net.a, spec);
  EXPECT_FALSE(delivered.header.stripe.has_value());
}

TEST(StripedSessionTest, StripingBeatsSingleStreamOnLossyPath) {
  // Loss-limited regime: N stripes multiply the aggregate equilibrium
  // window, just like PSockets.
  const auto measure = [](std::uint16_t streams) {
    StripeNet net(1e-3);
    TransferSpec spec;
    spec.dst = net.b;
    spec.payload_bytes = mib(16);
    spec.streams = streams;
    spec.tcp = tcp::TcpOptions{}.with_buffers(mib(8));
    const auto r = net.h.run_transfer(net.a, spec);
    EXPECT_TRUE(r.completed);
    return r.goodput.bits_per_second();
  };
  const double one = measure(1);
  const double four = measure(4);
  EXPECT_GT(four, 1.4 * one);
}

TEST(StripedSessionTest, StripingComposesWithRelaying) {
  // Stripes through the depot: both mechanisms at once, exact delivery.
  StripeNet net(5e-4);
  TransferSpec spec;
  spec.dst = net.b;
  spec.via = {net.d};
  spec.payload_bytes = mib(8);
  spec.streams = 4;
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(4));
  const auto r = net.h.run_transfer(net.a, spec);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(8));
}

}  // namespace
}  // namespace lsl::session
