// Cross-validation of the flow-level sweep against packet-level execution:
// pick scheduled cases from the PlanetLab pool, materialize the involved
// hosts as a real packet topology, run the scheduled-vs-direct comparison
// both ways, and require agreement in direction and rough magnitude.
#include <gtest/gtest.h>

#include "flow/path_model.hpp"
#include "nws/monitor.hpp"
#include "sched/scheduler.hpp"
#include "testbed/materialize.hpp"

namespace lsl::testbed {
namespace {

using namespace lsl::time_literals;

TEST(MaterializeTest, TopologyMirrorsGridParameters) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 2004);
  const std::vector<std::size_t> hosts{0, 10, 20};
  auto m = materialize_hosts(grid, hosts, 5);
  ASSERT_EQ(m.nodes.size(), 3u);
  auto& topo = m.harness->topology();
  EXPECT_EQ(topo.node(m.nodes[0]).name(), grid.host(0).name);
  net::Link* link = topo.link_between(m.nodes[0], m.nodes[1]);
  ASSERT_NE(link, nullptr);
  // Integer halving may lose one nanosecond of an odd RTT.
  EXPECT_LE((grid.rtt(0, 10) - link->config().propagation_delay * 2).ns(), 1);
  EXPECT_DOUBLE_EQ(link->config().loss_rate, grid.loss(0, 10));
}

TEST(MaterializeTest, PacketTransferCompletesOnMaterializedPair) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 2004);
  const std::vector<std::size_t> hosts{3, 33};
  auto m = materialize_hosts(grid, hosts, 6);
  session::TransferSpec spec;
  spec.dst = m.nodes[1];
  spec.payload_bytes = mib(1);
  spec.tcp =
      tcp::TcpOptions{}.with_buffers(grid.host(3).tcp_buffer);
  const auto r = m.harness->run_transfer(m.nodes[0], spec, 600_s);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, mib(1));
}

TEST(MaterializeTest, ParamAdaptersShareOneSourceOfTruth) {
  // Regression for fidelity drift: the analytic adapters must be pure
  // projections of the same PairRealization the simulators materialize, and
  // both must consume the rng stream identically.
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 2004);
  const std::uint64_t size = mib(4);

  Rng a(99);
  Rng b(99);
  const auto realized = grid.realize_direct(2, 31, size, a);
  const auto params = grid.direct_params(2, 31, size, b);
  EXPECT_EQ(realized.rtt, params.rtt);
  EXPECT_DOUBLE_EQ(realized.loss_rate, params.loss_rate);
  EXPECT_DOUBLE_EQ(realized.bottleneck.bits_per_second(),
                   params.bottleneck.bits_per_second());
  EXPECT_EQ(realized.window_bytes, params.window_bytes);
  // Identical rng consumption: the next draw must agree.
  EXPECT_EQ(a.next_u64(), b.next_u64());

  Rng c(7);
  Rng d(7);
  const std::vector<std::size_t> path{2, 10, 31};
  const auto hops = grid.realize_relay_hops(path, size, c);
  const auto hop_params = grid.relay_params(path, size, d);
  ASSERT_EQ(hops.size(), hop_params.size());
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto projected = hops[i].connection_params();
    EXPECT_EQ(projected.rtt, hop_params[i].rtt);
    EXPECT_DOUBLE_EQ(projected.bottleneck.bits_per_second(),
                     hop_params[i].bottleneck.bits_per_second());
    EXPECT_EQ(projected.window_bytes, hop_params[i].window_bytes);
  }
  EXPECT_EQ(c.next_u64(), d.next_u64());
}

TEST(MaterializeTest, MaterializedPathMirrorsRealizations) {
  // The simulated topology must carry exactly the realized hop parameters:
  // link rate = bottleneck, one-way delay = rtt/2, loss carried over, and
  // the per-host TCP buffers bound the window at the realized value.
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 2004);
  const std::vector<std::size_t> path{4, 12, 40};
  Rng trial(11);
  const auto hops = grid.realize_relay_hops(path, mib(4), trial);
  ASSERT_EQ(hops.size(), 2u);

  for (const auto fidelity : {exp::Fidelity::kPacket, exp::Fidelity::kFlow}) {
    auto m = materialize_path(grid, path, hops, 13, fidelity);
    ASSERT_EQ(m.nodes.size(), 3u);
    auto& topo = m.harness->topology();
    EXPECT_EQ((topo.fluid() != nullptr), fidelity == exp::Fidelity::kFlow);
    for (std::size_t i = 0; i < hops.size(); ++i) {
      net::Link* link = topo.link_between(m.nodes[i], m.nodes[i + 1]);
      ASSERT_NE(link, nullptr);
      EXPECT_DOUBLE_EQ(link->config().rate.bits_per_second(),
                       hops[i].bottleneck.bits_per_second());
      EXPECT_EQ(link->config().propagation_delay, hops[i].rtt / 2);
      EXPECT_DOUBLE_EQ(link->config().loss_rate, hops[i].loss_rate);
    }
  }
}

TEST(MaterializeTest, FluidPathTransferTracksRealizedBottleneck) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 2004);
  const std::vector<std::size_t> path{4, 12, 40};
  Rng trial(11);
  const auto hops = grid.realize_relay_hops(path, mib(4), trial);
  auto m = materialize_path(grid, path, hops, 13, exp::Fidelity::kFlow);

  session::TransferSpec spec;
  spec.dst = m.nodes.back();
  spec.via.push_back(m.nodes[1]);
  spec.payload_bytes = mib(4);
  spec.tcp = tcp::TcpOptions{}.with_buffers(grid.host(4).tcp_buffer);
  const auto r = m.harness->run_transfer(m.nodes.front(), spec, 3600_s);
  ASSERT_TRUE(r.completed);
  const double floor_bps = std::min(hops[0].bottleneck.bits_per_second(),
                                    hops[1].bottleneck.bits_per_second());
  // Goodput can beat the end-to-end floor (the depot pipelines the legs)
  // but cannot exceed the faster leg.
  EXPECT_LE(r.goodput.bits_per_second(),
            std::max(hops[0].bottleneck.bits_per_second(),
                     hops[1].bottleneck.bits_per_second()) *
                1.05);
  EXPECT_GT(r.goodput.bits_per_second(), 0.05 * floor_bps);
}

TEST(MaterializeTest, FlowModelAgreesWithPacketExecutionOnScheduledCases) {
  // End-to-end: measure, schedule, pick depot-routed cases, then execute
  // each on the packet simulator and compare against the flow model's
  // no-noise prediction.
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 2004);
  nws::PerformanceMonitor monitor(grid.sites(), nws::NoiseModel{}, 7);
  for (int epoch = 0; epoch < 20; ++epoch) {
    monitor.observe_epoch(grid.truth());
  }
  const sched::Scheduler scheduler(monitor.build_matrix(),
                                   {.epsilon = grid.noise().sweep_epsilon});

  // First few single-depot scheduled cases across distinct sites.
  struct Case {
    std::size_t src;
    std::size_t dst;
    std::vector<std::size_t> path;
  };
  std::vector<Case> cases;
  for (std::size_t src = 0; src < grid.size() && cases.size() < 3; src += 7) {
    for (std::size_t dst = 1; dst < grid.size() && cases.size() < 3;
         dst += 11) {
      if (src == dst || grid.host(src).site == grid.host(dst).site) {
        continue;
      }
      const auto decision = scheduler.route(src, dst);
      if (decision.uses_depots() && decision.path.size() == 3) {
        cases.push_back(Case{src, dst, decision.path});
      }
    }
  }
  ASSERT_GE(cases.size(), 2u);

  const std::uint64_t size = mib(4);
  for (const auto& c : cases) {
    // Packet-level execution.
    auto m = materialize_hosts(grid, c.path, 9);
    const auto opts = tcp::TcpOptions{}.with_buffers(
        grid.host(c.src).tcp_buffer);
    session::TransferSpec direct;
    direct.dst = m.nodes.back();
    direct.payload_bytes = size;
    direct.tcp = opts;
    const auto r_direct = m.harness->run_transfer(m.nodes.front(), direct,
                                                  3600_s);
    session::TransferSpec relayed = direct;
    for (std::size_t i = 1; i + 1 < m.nodes.size(); ++i) {
      relayed.via.push_back(m.nodes[i]);
    }
    const auto r_relayed =
        m.harness->run_transfer(m.nodes.front(), relayed, 3600_s);
    ASSERT_TRUE(r_direct.completed);
    ASSERT_TRUE(r_relayed.completed);

    // Flow-model prediction with noise disabled (fixed Rng consumed inside
    // still samples load; use a fixed trial stream for determinism).
    Rng trial(42);
    const auto direct_params =
        grid.direct_params(c.src, c.dst, size, trial);
    const SimTime t_direct = flow::transfer_time(direct_params, size);
    const auto hops = grid.relay_params(c.path, size, trial);
    const SimTime t_relay = flow::relay_transfer_time({hops, 32 * kMiB}, size);

    const double packet_speedup = r_relayed.goodput.bits_per_second() /
                                  r_direct.goodput.bits_per_second();
    const double model_speedup =
        t_direct.to_seconds() / t_relay.to_seconds();
    // Loose but meaningful: same direction-of-effect within a factor.
    EXPECT_GT(packet_speedup, 0.4 * model_speedup)
        << "case " << c.src << "->" << c.dst;
    EXPECT_LT(packet_speedup, 2.5 * model_speedup)
        << "case " << c.src << "->" << c.dst;
  }
}

}  // namespace
}  // namespace lsl::testbed
