// Model-checking subsystem: explorer choice-tree enumeration, sleep-set
// pruning, deterministic counterexample replay, the mc::Invariants suite,
// fault-plan perturbation/randomization, mutation smoke tests (seeded bugs
// the explorer must catch), the pinned stale-offset regression, and the
// 64-seed fault-schedule fuzz.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "exp/scenario.hpp"
#include "fault/plan.hpp"
#include "lsl/endpoint.hpp"
#include "mc/explorer.hpp"
#include "mc/fuzzer.hpp"
#include "mc/hooks.hpp"
#include "mc/invariants.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;

// ---- toy choice tree ------------------------------------------------------
//
// Three events ready at the same instant: A (actor 1) and B (actor 2) are
// independent; P (actor 0) is conservatively dependent on everything. Of the
// six orders, BAP is a pure commutation of ABP (A and B swap with nothing
// dependent between them), so a sound sleep-set search covers five classes.

mc::ScenarioFn toy_scenario(std::vector<std::string>* orders) {
  return [orders](mc::RunContext& ctx) {
    sim::Simulator sim;
    ctx.attach(sim);
    auto order = std::make_shared<std::string>();
    sim.schedule_at(1_ms, [order] { *order += 'A'; }, "toy.A", 1);
    sim.schedule_at(1_ms, [order] { *order += 'B'; }, "toy.B", 2);
    sim.schedule_at(1_ms, [order] { *order += 'P'; }, "toy.P", 0);
    sim.run();
    if (orders != nullptr) {
      orders->push_back(*order);
    }
  };
}

TEST(McExplorerTest, FullTreeEnumerationWithSleepSets) {
  std::vector<std::string> orders;
  mc::ExplorerOptions opts;
  opts.max_runs = 64;
  mc::Explorer explorer(toy_scenario(&orders), opts);
  const mc::ExploreStats& stats = explorer.explore();

  EXPECT_EQ(stats.runs, 5u);
  EXPECT_EQ(stats.distinct_schedules, 4u);
  EXPECT_EQ(stats.redundant_runs, 1u);
  EXPECT_EQ(stats.branches_pruned_sleep, 1u);
  EXPECT_EQ(stats.choice_points, 9u);
  EXPECT_EQ(stats.violation_runs, 0u);
  EXPECT_TRUE(explorer.counterexamples().empty());

  ASSERT_EQ(orders.size(), 5u);
  // Run 0 takes the kernel's deterministic order (schedule order).
  EXPECT_EQ(orders[0], "ABP");
  std::vector<std::string> sorted = orders;
  std::sort(sorted.begin(), sorted.end());
  // BAP never executes: it is ABP with the independent A/B pair swapped.
  const std::vector<std::string> expected = {"ABP", "APB", "BPA", "PAB",
                                             "PBA"};
  EXPECT_EQ(sorted, expected);
}

TEST(McExplorerTest, SleepSetsOffEnumeratesAllInterleavings) {
  std::vector<std::string> orders;
  mc::ExplorerOptions opts;
  opts.max_runs = 64;
  opts.sleep_sets = false;
  mc::Explorer explorer(toy_scenario(&orders), opts);
  const mc::ExploreStats& stats = explorer.explore();

  EXPECT_EQ(stats.runs, 6u);
  EXPECT_EQ(stats.distinct_schedules, 6u);
  EXPECT_EQ(stats.redundant_runs, 0u);
  EXPECT_EQ(stats.branches_pruned_sleep, 0u);
  EXPECT_EQ(stats.choice_points, 12u);

  std::vector<std::string> sorted = orders;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<std::string> expected = {"ABP", "APB", "BAP",
                                             "BPA", "PAB", "PBA"};
  EXPECT_EQ(sorted, expected);
}

TEST(McExplorerTest, ReplayIsBitIdentical) {
  std::vector<std::string> orders;
  mc::Explorer explorer(toy_scenario(&orders), {});

  const mc::RunRecord r1 = explorer.replay({1});
  const mc::RunRecord r2 = explorer.replay({1});
  EXPECT_NE(r1.schedule_hash, 0u);
  EXPECT_EQ(r1.schedule_hash, r2.schedule_hash);
  EXPECT_EQ(r1.events, r2.events);
  ASSERT_EQ(orders.size(), 2u);
  EXPECT_EQ(orders[0], "BPA");
  EXPECT_EQ(orders[1], orders[0]);

  // The default schedule hashes differently.
  const mc::RunRecord base = explorer.replay({});
  EXPECT_EQ(orders.back(), "ABP");
  EXPECT_NE(base.schedule_hash, r1.schedule_hash);
}

TEST(McExplorerTest, SlackWindowWidensChoicePoints) {
  // Two dependent events 200us apart: not a tie, so slack 0 sees no choice
  // point; slack 500us lets the explorer reorder them.
  auto scenario = [](std::vector<std::string>* orders) -> mc::ScenarioFn {
    return [orders](mc::RunContext& ctx) {
      sim::Simulator sim;
      ctx.attach(sim);
      auto order = std::make_shared<std::string>();
      sim.schedule_at(1_ms, [order] { *order += 'A'; }, "toy.A", 0);
      sim.schedule_at(SimTime::microseconds(1200), [order] { *order += 'B'; },
                      "toy.B", 0);
      sim.run();
      if (orders != nullptr) {
        orders->push_back(*order);
      }
    };
  };

  {
    std::vector<std::string> orders;
    mc::Explorer tight(scenario(&orders), {});
    const mc::ExploreStats& stats = tight.explore();
    EXPECT_EQ(stats.runs, 1u);
    EXPECT_EQ(stats.choice_points, 0u);
    EXPECT_EQ(orders, std::vector<std::string>{"AB"});
  }
  {
    std::vector<std::string> orders;
    mc::ExplorerOptions opts;
    opts.slack = 500_us;
    mc::Explorer loose(scenario(&orders), opts);
    const mc::ExploreStats& stats = loose.explore();
    EXPECT_EQ(stats.runs, 2u);
    EXPECT_EQ(stats.distinct_schedules, 2u);
    std::vector<std::string> sorted = orders;
    std::sort(sorted.begin(), sorted.end());
    const std::vector<std::string> expected = {"AB", "BA"};
    EXPECT_EQ(sorted, expected);
  }
}

// ---- invariant suite ------------------------------------------------------

bool any_contains(const std::vector<std::string>& violations,
                  const std::string& needle) {
  return std::any_of(violations.begin(), violations.end(),
                     [&needle](const std::string& v) {
                       return v.find(needle) != std::string::npos;
                     });
}

TEST(McInvariantsTest, CleanRunHasNoViolations) {
  mc::Invariants inv;
  inv.on_buffer(1, 4096);
  inv.on_commit(7, 0, 50);
  inv.on_deliver(7, 0, 50);
  inv.on_commit(7, 50, 100);
  inv.on_deliver(7, 50, 100);
  inv.on_buffer(1, -4096);
  inv.note_outcome(7, 100, /*completed=*/true, /*failed=*/false);
  inv.finalize();
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(McInvariantsTest, CommittedOffsetMustBeMonotone) {
  mc::Invariants inv;
  inv.on_commit(7, 0, 100);
  inv.on_commit(7, 0, 40);
  ASSERT_FALSE(inv.ok());
  EXPECT_TRUE(any_contains(inv.violations(),
                           "committed offset regressed 100 -> 40"));
}

TEST(McInvariantsTest, OverlappingDeliveryIsDoubleDelivery) {
  mc::Invariants inv;
  inv.on_deliver(7, 0, 100);
  inv.on_deliver(7, 60, 160);
  ASSERT_FALSE(inv.ok());
  EXPECT_TRUE(any_contains(
      inv.violations(),
      "byte delivered twice: [60, 160) overlaps delivered prefix 100"));
}

TEST(McInvariantsTest, DeliveryGapIsByteLoss) {
  mc::Invariants inv;
  inv.on_deliver(7, 0, 100);
  inv.on_deliver(7, 150, 200);
  ASSERT_FALSE(inv.ok());
  EXPECT_TRUE(
      any_contains(inv.violations(), "byte lost: delivery skipped [100, 150)"));
}

TEST(McInvariantsTest, EmptyDeliveryRangeIsFlagged) {
  mc::Invariants inv;
  inv.on_deliver(7, 100, 100);
  ASSERT_FALSE(inv.ok());
  EXPECT_TRUE(any_contains(inv.violations(), "empty delivery range"));
}

TEST(McInvariantsTest, BlacklistedDepotMustNotBeReselected) {
  mc::Invariants inv;
  inv.on_attempt(7, /*via=*/{2}, /*blacklist=*/{1});
  EXPECT_TRUE(inv.ok());
  inv.on_attempt(7, /*via=*/{1}, /*blacklist=*/{1, 3});
  ASSERT_FALSE(inv.ok());
  EXPECT_TRUE(
      any_contains(inv.violations(), "blacklisted depot 1 re-selected"));
}

TEST(McInvariantsTest, BufferAccountingMustBalance) {
  {
    mc::Invariants inv;
    inv.on_buffer(2, -512);
    ASSERT_FALSE(inv.ok());
    EXPECT_TRUE(any_contains(inv.violations(),
                             "depot 2 buffer accounting went negative"));
  }
  {
    mc::Invariants inv;
    inv.on_buffer(2, 512);
    inv.finalize();
    ASSERT_FALSE(inv.ok());
    EXPECT_TRUE(any_contains(
        inv.violations(),
        "depot 2 buffer accounting did not return to zero (512 bytes"));
  }
}

TEST(McInvariantsTest, EverySessionMustTerminate) {
  mc::Invariants inv;
  inv.on_commit(7, 0, 40);
  inv.note_outcome(7, 100, /*completed=*/false, /*failed=*/false);
  inv.finalize();
  ASSERT_FALSE(inv.ok());
  EXPECT_TRUE(any_contains(inv.violations(),
                           "did not terminate (neither delivered nor failed; "
                           "committed 40 of 100)"));
}

TEST(McInvariantsTest, CompletedSessionMustDeliverWholePayload) {
  mc::Invariants inv;
  inv.on_deliver(7, 0, 60);
  inv.note_outcome(7, 100, /*completed=*/true, /*failed=*/false);
  inv.finalize();
  ASSERT_FALSE(inv.ok());
  EXPECT_TRUE(any_contains(inv.violations(),
                           "byte lost: completed session"));
  EXPECT_TRUE(any_contains(inv.violations(), "delivered 60 of 100"));
}

TEST(McInvariantsTest, CommitBeyondPayloadIsFlagged) {
  mc::Invariants inv;
  inv.on_deliver(7, 0, 100);
  inv.on_commit(7, 0, 140);
  inv.note_outcome(7, 100, /*completed=*/true, /*failed=*/false);
  inv.finalize();
  ASSERT_FALSE(inv.ok());
  EXPECT_TRUE(any_contains(inv.violations(),
                           "committed offset 140 beyond payload 100"));
}

TEST(McInvariantsTest, UnnotedSessionsGetNoVerdict) {
  // Mid-run observations without an outcome (e.g. a depot-internal relay
  // session) must not trip termination checks.
  mc::Invariants inv;
  inv.on_commit(9, 0, 10);
  inv.finalize();
  EXPECT_TRUE(inv.ok());
}

// ---- fault-plan perturbation and randomization ----------------------------

TEST(FaultPerturbationsTest, ShiftsOneFaultPerVariant) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kDepotCrash, .at = 1_s, .node = 1});
  plan.add({.kind = fault::FaultKind::kLinkDown,
            .at = 5_s,
            .link_a = 0,
            .link_b = 2});

  fault::PerturbSpec spec;
  spec.offsets = {SimTime::seconds(-2), SimTime::zero(), 1_s};
  spec.include_original = true;
  const std::vector<fault::FaultPlan> variants =
      fault::perturbations(plan, spec);

  // Original + (per fault: -2s and +1s; the zero offset is a no-op and is
  // dropped). Fault 0's -2s shift clamps to t=0.
  ASSERT_EQ(variants.size(), 5u);
  EXPECT_EQ(variants[0].faults, plan.faults);
  EXPECT_EQ(variants[1].faults[0].at, SimTime::zero());
  EXPECT_EQ(variants[1].faults[1].at, 5_s);
  EXPECT_EQ(variants[2].faults[0].at, 2_s);
  EXPECT_EQ(variants[3].faults[1].at, 3_s);
  EXPECT_EQ(variants[3].faults[0].at, 1_s);
  EXPECT_EQ(variants[4].faults[1].at, 6_s);

  // A shift that clamps exactly onto the original time produces no variant.
  fault::FaultPlan at_zero;
  at_zero.add({.kind = fault::FaultKind::kDepotCrash, .at = SimTime::zero(),
               .node = 1});
  fault::PerturbSpec clamp;
  clamp.offsets = {SimTime::seconds(-2)};
  clamp.include_original = false;
  EXPECT_TRUE(fault::perturbations(at_zero, clamp).empty());
}

TEST(FaultRandomPlanTest, DeterministicAndBounded) {
  fault::RandomPlanSpec spec;
  spec.depots = {1};
  spec.links = {{0, 1}, {1, 2}, {0, 2}};
  spec.min_faults = 2;
  spec.max_faults = 5;
  spec.horizon = 10_s;

  Rng r1(7);
  Rng r2(7);
  const fault::FaultPlan p1 = fault::random_plan(spec, r1);
  const fault::FaultPlan p2 = fault::random_plan(spec, r2);
  EXPECT_EQ(p1.faults, p2.faults);

  ASSERT_GE(p1.faults.size(), 2u);
  ASSERT_LE(p1.faults.size(), 5u);
  for (const fault::FaultSpec& f : p1.faults) {
    EXPECT_LT(f.at, 10_s);
    EXPECT_GE(f.at, SimTime::zero());
    // Never permanent: a stranded fault would leave depot relays holding
    // buffer grants forever, a false buffer-balance violation.
    EXPECT_GT(f.duration, SimTime::zero());
    EXPECT_LE(f.duration, spec.max_duration);
    EXPECT_TRUE(f.kind == fault::FaultKind::kDepotCrash ||
                f.kind == fault::FaultKind::kLinkDown ||
                f.kind == fault::FaultKind::kLinkBrownout);
    if (f.kind == fault::FaultKind::kDepotCrash) {
      EXPECT_EQ(f.node, 1u);
    }
  }

  Rng r3(8);
  const fault::FaultPlan p3 = fault::random_plan(spec, r3);
  EXPECT_NE(p1.faults, p3.faults);
}

TEST(McPlanConversionTest, DeclaredPlanRoundTrips) {
  const auto parsed = exp::parse_scenario(
      "host a\nhost d\nhost b\n"
      "link a d rate=100 delay=5\n"
      "link d b rate=100 delay=5\n"
      "fault depot-crash d at=1.5 for=2\n"
      "fault link-down a d at=3 for=1\n"
      "transfer a b size=1 via=d\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  const fault::FaultPlan plan = mc::declared_plan(*parsed.scenario);
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].kind, fault::FaultKind::kDepotCrash);
  EXPECT_EQ(plan.faults[0].node, 1u);  // hosts get NodeIds in order: a=0, d=1
  EXPECT_EQ(plan.faults[0].at, SimTime::from_seconds(1.5));
  EXPECT_EQ(plan.faults[1].kind, fault::FaultKind::kLinkDown);
  EXPECT_EQ(plan.faults[1].link_a, 0u);
  EXPECT_EQ(plan.faults[1].link_b, 1u);

  const exp::Scenario back = mc::with_fault_plan(*parsed.scenario, plan);
  ASSERT_EQ(back.faults.size(), 2u);
  EXPECT_EQ(back.faults[0].a, "d");
  EXPECT_EQ(back.faults[1].a, "a");
  EXPECT_EQ(back.faults[1].b, "d");
  EXPECT_EQ(mc::declared_plan(back).faults, plan.faults);
}

// ---- mutation smoke -------------------------------------------------------
//
// Re-introduce known-fixed protocol bugs via the mutation registry and prove
// the explorer finds them; the same exploration is clean on trunk. This is
// the guard that the verification harness would actually catch a regression.

constexpr char kBlacklistScenario[] =
    "host a\nhost d\nhost b\n"
    "link a d rate=100 delay=5\n"
    "link d b rate=100 delay=5\n"
    "link a b rate=100 delay=10\n"
    "fault depot-crash d at=0.2 for=30\n"
    "recovery retries=3 stall=2 backoff=100 max_backoff=400\n"
    "transfer a b size=2 via=d\n";

TEST(McMutationSmokeTest, ExplorerCatchesRevertedBlacklistGuard) {
  const auto parsed = exp::parse_scenario(kBlacklistScenario);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  mc::ExplorerOptions opts;
  opts.max_runs = 3;
  opts.minimize_budget = 2;
  {
    // skip_blacklist_filter reverts recovery.cpp's relaunch_with() to the
    // pre-fix behavior: retries re-select the crashed depot instead of
    // filtering it out of the route.
    mc::ScopedMutation revert("skip_blacklist_filter");
    mc::Explorer explorer(mc::scenario_fn(*parsed.scenario, 11), opts);
    explorer.explore();
    ASSERT_FALSE(explorer.counterexamples().empty());
    const mc::Counterexample& ce = explorer.counterexamples().front();
    EXPECT_TRUE(any_contains(ce.run.violations, "blacklisted depot 1"))
        << ce.str();
    EXPECT_FALSE(ce.post_mortem.empty());
    // The counterexample str() is the CI artifact: it must carry the replay
    // key and the violation text.
    EXPECT_NE(ce.str().find("replay picks"), std::string::npos);
    EXPECT_NE(ce.str().find("blacklisted depot"), std::string::npos);
  }
  {
    mc::Explorer explorer(mc::scenario_fn(*parsed.scenario, 11), opts);
    const mc::ExploreStats& stats = explorer.explore();
    EXPECT_TRUE(explorer.counterexamples().empty()) << stats.str();
    EXPECT_EQ(stats.violation_runs, 0u);
  }
}

// ---- pinned regression ----------------------------------------------------

// Stale-offset probe race (fixed in depot.cpp deliver_chunk, this PR).
//
// Topology: fast a-d hop, slow 150ms-latency pinned d-b hop, fast direct
// a-b fallback. The depot d relays in ACK-clocked slow-start bursts (300ms
// RTT); the crash at t=1.56s lands mid-burst, so ~20KB of relayed data is
// still in flight d->b, with the RST queued FIFO behind it. The source sees
// its own RST in 2ms, backs off 20ms, probes the sink for its committed
// offset C1=32120, and resumes direct from C1 at 100mbps -- racing far past
// C1 before the stale burst lands at t=1.67s and re-delivers [32120, ...).
// Before the fix both copies reached the application: a classic
// stale-offset double delivery. The fix routes resumable deliveries through
// the sink's progress ledger and clamps each chunk to the ledger delta, so
// whichever relay delivers a byte first wins and the other's copy is
// dropped.
//
// Minimized choice trace: [] -- the default schedule already realizes the
// race (the resume beats the in-flight burst by construction), so no
// interleaving perturbation is needed to reproduce it. The mutation
// skip_delivery_dedup reverts the ledger clamp and the explorer reports
// "byte delivered twice" on run 1.
constexpr char kStaleProbeScenario[] =
    "host a\nhost d\nhost b\n"
    "link a d rate=100 delay=2\n"
    "link d b rate=5 delay=150\n"
    "link a b rate=100 delay=5\n"
    "pin d b\n"
    "fault depot-crash d at=1.56 for=2\n"
    "recovery retries=6 stall=2 backoff=20 max_backoff=400\n"
    "transfer a b size=4 via=d\n";

TEST(McRegressionTest, StaleOffsetProbeRaceDoubleDelivery) {
  const auto parsed = exp::parse_scenario(kStaleProbeScenario);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  mc::ExplorerOptions opts;
  opts.max_runs = 4;
  opts.minimize_budget = 2;
  {
    mc::ScopedMutation revert("skip_delivery_dedup");
    mc::Explorer explorer(mc::scenario_fn(*parsed.scenario, 5), opts);
    explorer.explore();
    ASSERT_FALSE(explorer.counterexamples().empty());
    const mc::Counterexample& ce = explorer.counterexamples().front();
    EXPECT_TRUE(any_contains(ce.run.violations, "byte delivered twice"))
        << ce.str();
    EXPECT_TRUE(ce.picks.empty())
        << "race should reproduce on the default schedule; got picks "
        << ce.picks_csv();
  }
  {
    // With the ledger clamp in place the same exploration is clean.
    mc::Explorer explorer(mc::scenario_fn(*parsed.scenario, 5), opts);
    const mc::ExploreStats& stats = explorer.explore();
    EXPECT_TRUE(explorer.counterexamples().empty()) << stats.str();
    EXPECT_EQ(stats.violation_runs, 0u);
  }
}

// ---- scenario verification and fuzzing ------------------------------------

TEST(McVerifyTest, PerturbedVariantsShareTheRunBudget) {
  const auto parsed = exp::parse_scenario(kBlacklistScenario);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  mc::VerifyOptions vopts;
  vopts.explorer.max_runs = 8;
  vopts.perturb_offsets = {SimTime::from_seconds(0.2)};
  const mc::VerifyResult result = mc::verify_scenario(*parsed.scenario, 11,
                                                      vopts);
  // Original + the single depot-crash fault shifted +0.2s.
  ASSERT_EQ(result.variant_labels.size(), 2u);
  EXPECT_EQ(result.variant_labels[0], "original");
  EXPECT_NE(result.variant_labels[1].find("depot-crash"), std::string::npos);
  EXPECT_NE(result.variant_labels[1].find("+0.2s"), std::string::npos);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.stats.runs, 2u);
}

TEST(McFuzzTest, SixtyFourRandomFaultSchedulesHoldInvariants) {
  const auto parsed = exp::parse_scenario(
      "host a\nhost d\nhost b\n"
      "link a d rate=100 delay=5\n"
      "link d b rate=50 delay=10\n"
      "link a b rate=100 delay=20\n"
      "recovery retries=6 stall=2 backoff=100 max_backoff=1000\n"
      "transfer a b size=8 via=d\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  const mc::FuzzResult result =
      mc::fuzz_fault_schedules(*parsed.scenario, 2004, 64);
  EXPECT_EQ(result.runs, 64u);
  EXPECT_TRUE(result.ok()) << result.str();
  EXPECT_TRUE(result.bad_seeds.empty());
}

// ---- depot store eviction interleavings -----------------------------------

TEST(McDepotStoreTest, ExplorerInterleavesEvictionOrderings) {
  // Symmetric async parks: two identical sessions (a->e and b->e via depot
  // d over mirror-image links) drain into d at the same instant, so their
  // deferred depot.store events are simultaneously ready. The store cap
  // fits one session but not both, so whichever store fires second evicts
  // the first -- and because both events carry depot d's store actor tag
  // they are dependent, forcing the explorer to run both orders. Flow
  // fidelity keeps the event count small enough that the tie is reachable
  // within a modest run budget.
  std::vector<int> survivors;  // per run: 0 = session A survived, 1 = B
  mc::ScenarioFn scenario = [&survivors](mc::RunContext& ctx) {
    exp::SimHarness h(51, exp::Fidelity::kFlow);
    ctx.attach(h.simulator());
    const net::NodeId a = h.add_host("a");
    const net::NodeId b = h.add_host("b");
    const net::NodeId d = h.add_host("d");
    const net::NodeId e = h.add_host("e");
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(200);
    link.propagation_delay = 3_ms;
    h.add_link(a, d, link);
    h.add_link(b, d, link);
    h.add_link(d, e, link);
    session::DepotConfig cfg;
    cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
    cfg.max_store_bytes = mib(3);  // one 2 MiB session fits, two do not
    h.deploy(cfg);

    session::TransferSpec spec;
    spec.dst = e;
    spec.via = {d};
    spec.async_session = true;
    spec.payload_bytes = mib(2);
    spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
    const auto sa = h.launch(a, spec);
    const auto sb = h.launch(b, spec);
    h.simulator().run(h.simulator().now() + 30_s);

    const bool a_stored = h.depot(d).stored_bytes(sa.id).has_value();
    const bool b_stored = h.depot(d).stored_bytes(sb.id).has_value();
    ASSERT_NE(a_stored, b_stored);  // exactly one survivor per run
    EXPECT_EQ(h.depot(d).stats().sessions_evicted, 1u);
    survivors.push_back(a_stored ? 0 : 1);
  };

  mc::ExplorerOptions opts;
  opts.max_runs = 32;
  mc::Explorer explorer(scenario, opts);
  const mc::ExploreStats& stats = explorer.explore();
  EXPECT_EQ(stats.violation_runs, 0u);
  ASSERT_GE(survivors.size(), 2u);
  EXPECT_GT(std::count(survivors.begin(), survivors.end(), 0), 0)
      << "session A never survived: store order never flipped";
  EXPECT_GT(std::count(survivors.begin(), survivors.end(), 1), 0)
      << "session B never survived: store order never flipped";
}

}  // namespace
}  // namespace lsl
