// Nagle's algorithm: small writes coalesce while data is in flight.
#include <gtest/gtest.h>

#include "exp/packet_log.hpp"
#include "fixtures.hpp"

namespace lsl::tcp {
namespace {

using namespace lsl::time_literals;
using testing::TwoNodeNet;

net::LinkConfig wan() {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(100);
  cfg.propagation_delay = 20_ms;  // 40 ms RTT: writes outpace ACKs
  return cfg;
}

/// Issue `count` writes of `bytes` spaced 1 ms apart; returns the number of
/// data segments that crossed the wire.
std::size_t run_chatty_sender(bool nagle, int count, std::uint64_t bytes) {
  TwoNodeNet net(wan());
  exp::PacketLog log;
  log.attach(net.topo->link(0), net.sim);

  constexpr net::Port kPort = 5001;
  net.stack_b->listen(kPort, [](Connection::Ptr conn) {
    conn->on_readable = [c = conn.get()] { c->read(c->readable_bytes()); };
  });
  auto opts = TcpOptions{};
  opts.nagle = nagle;
  auto client = net.stack_a->connect(net.b, kPort, opts);
  client->on_connected = [&, c = client.get()] {
    for (int i = 0; i < count; ++i) {
      net.sim.schedule_after(SimTime::milliseconds(i), [c, bytes] {
        c->write_synthetic(bytes);
      });
    }
  };
  net.sim.run(10_s);
  std::size_t data_segments = 0;
  for (const auto& entry : log.entries()) {
    if (entry.payload > 0) {
      ++data_segments;
    }
  }
  return data_segments;
}

TEST(NagleTest, CoalescesSmallWrites) {
  // 20 writes of 100 bytes over a 40 ms RTT. Without Nagle every write
  // ships immediately (one runt each); with Nagle only the first runt goes
  // out per RTT and the rest coalesce behind it.
  const auto without = run_chatty_sender(false, 20, 100);
  const auto with = run_chatty_sender(true, 20, 100);
  EXPECT_GE(without, 18u);
  EXPECT_LE(with, 4u);
}

TEST(NagleTest, FullSegmentsUnaffected) {
  // MSS-sized writes never wait: Nagle only holds runts.
  const auto without = run_chatty_sender(false, 8, 1460);
  const auto with = run_chatty_sender(true, 8, 1460);
  EXPECT_EQ(with, without);
}

TEST(NagleTest, AllBytesStillDelivered) {
  TwoNodeNet net(wan());
  constexpr net::Port kPort = 5002;
  std::uint64_t received = 0;
  net.stack_b->listen(kPort, [&](Connection::Ptr conn) {
    conn->on_readable = [&, c = conn.get()] {
      received += c->read(c->readable_bytes()).n;
    };
  });
  auto opts = TcpOptions{};
  opts.nagle = true;
  auto client = net.stack_a->connect(net.b, kPort, opts);
  client->on_connected = [&, c = client.get()] {
    for (int i = 0; i < 50; ++i) {
      net.sim.schedule_after(SimTime::milliseconds(i), [c] {
        c->write_synthetic(123);
      });
    }
  };
  net.sim.run(30_s);
  EXPECT_EQ(received, 50u * 123u);
}

}  // namespace
}  // namespace lsl::tcp
