// Packet reordering via link jitter: the receive path's reassembly and the
// sender's dup-ACK logic must tolerate out-of-order delivery without losing
// or duplicating data.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "net/link.hpp"

namespace lsl::net {
namespace {

using namespace lsl::time_literals;
using testing::TwoNodeNet;
using testing::run_bulk_transfer;

TEST(LinkJitterTest, JitterReordersDelivery) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::gbps(10);  // serialization negligible
  cfg.propagation_delay = 1_ms;
  cfg.jitter = 5_ms;
  Link link(sim, cfg, Rng(7));
  std::vector<std::uint64_t> order;
  link.set_deliver([&](Packet p) { order.push_back(p.uid); });
  for (std::uint64_t i = 0; i < 64; ++i) {
    Packet p;
    p.src = 0;
    p.dst = 1;
    p.payload_bytes = 100;
    p.uid = i;
    link.enqueue(std::move(p));
  }
  sim.run();
  ASSERT_EQ(order.size(), 64u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(LinkJitterTest, ZeroJitterPreservesFifo) {
  sim::Simulator sim;
  LinkConfig cfg;
  Link link(sim, cfg, Rng(7));
  std::vector<std::uint64_t> order;
  link.set_deliver([&](Packet p) { order.push_back(p.uid); });
  for (std::uint64_t i = 0; i < 32; ++i) {
    Packet p;
    p.payload_bytes = 100;
    p.uid = i;
    p.src = 0;
    p.dst = 1;
    link.enqueue(std::move(p));
  }
  sim.run();
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

class JitterConservationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JitterConservationTest, TcpDeliversExactlyUnderReordering) {
  LinkConfig link;
  link.rate = Bandwidth::mbps(100);
  link.propagation_delay = 10_ms;
  link.queue_capacity_bytes = mib(1);
  link.jitter = 4_ms;  // heavy reordering
  TwoNodeNet net(link, GetParam());
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   mib(2) + 777,
                                   tcp::TcpOptions{}.with_buffers(mib(1)),
                                   SimTime::seconds(3600));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, mib(2) + 777);
}

TEST_P(JitterConservationTest, TcpDeliversExactlyUnderReorderingAndLoss) {
  LinkConfig link;
  link.rate = Bandwidth::mbps(100);
  link.propagation_delay = 10_ms;
  link.queue_capacity_bytes = mib(1);
  link.jitter = 3_ms;
  link.loss_rate = 1e-3;
  TwoNodeNet net(link, GetParam() ^ 0xF00D);
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   mib(2),
                                   tcp::TcpOptions{}.with_buffers(mib(1)),
                                   SimTime::seconds(3600));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, mib(2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterConservationTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace lsl::net
