#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace lsl::net {
namespace {

using namespace lsl::time_literals;

Packet make_packet(NodeId src, NodeId dst, std::uint32_t payload,
                   std::uint64_t uid = 0) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.payload_bytes = payload;
  p.uid = uid;
  return p;
}

TEST(PacketTest, WireBytesIncludesOverhead) {
  EXPECT_EQ(make_packet(0, 1, 1460).wire_bytes(), 1500u);
  EXPECT_EQ(make_packet(0, 1, 0).wire_bytes(), kPacketOverheadBytes);
}

TEST(LinkTest, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(100);
  cfg.propagation_delay = 10_ms;
  Link link(sim, cfg, Rng(1));
  SimTime arrival = SimTime::zero();
  link.set_deliver([&](Packet) { arrival = sim.now(); });
  link.enqueue(make_packet(0, 1, 1460));
  sim.run();
  // 1500B at 100Mbit = 120us serialization + 10ms propagation.
  EXPECT_EQ(arrival, 10_ms + 120_us);
}

TEST(LinkTest, SerializesBackToBack) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(100);
  cfg.propagation_delay = SimTime::zero();
  Link link(sim, cfg, Rng(1));
  std::vector<SimTime> arrivals;
  link.set_deliver([&](Packet) { arrivals.push_back(sim.now()); });
  link.enqueue(make_packet(0, 1, 1460));
  link.enqueue(make_packet(0, 1, 1460));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 120_us);
  EXPECT_EQ(arrivals[1], 240_us);
}

TEST(LinkTest, DropTailWhenQueueFull) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(1);  // slow, so the queue backs up
  cfg.queue_capacity_bytes = 3000;
  Link link(sim, cfg, Rng(1));
  int delivered = 0;
  link.set_deliver([&](Packet) { ++delivered; });
  for (int i = 0; i < 5; ++i) {
    link.enqueue(make_packet(0, 1, 1460));
  }
  sim.run();
  EXPECT_EQ(delivered, 2);  // 2 x 1500B fit in 3000B
  EXPECT_EQ(link.stats().packets_dropped_queue, 3u);
}

TEST(LinkTest, BernoulliLossDropsRoughlyAtRate) {
  sim::Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::gbps(10);
  cfg.propagation_delay = SimTime::zero();
  cfg.queue_capacity_bytes = 1ULL << 40;
  cfg.loss_rate = 0.1;
  Link link(sim, cfg, Rng(99));
  int delivered = 0;
  link.set_deliver([&](Packet) { ++delivered; });
  constexpr int kPackets = 5000;
  for (int i = 0; i < kPackets; ++i) {
    link.enqueue(make_packet(0, 1, 100));
  }
  sim.run();
  const double loss =
      1.0 - static_cast<double>(delivered) / static_cast<double>(kPackets);
  EXPECT_NEAR(loss, 0.1, 0.02);
  EXPECT_EQ(link.stats().packets_dropped_loss,
            static_cast<std::uint64_t>(kPackets - delivered));
}

TEST(LinkTest, StatsCountBytes) {
  sim::Simulator sim;
  LinkConfig cfg;
  Link link(sim, cfg, Rng(1));
  link.set_deliver([](Packet) {});
  link.enqueue(make_packet(0, 1, 960));
  sim.run();
  EXPECT_EQ(link.stats().packets_sent, 1u);
  EXPECT_EQ(link.stats().bytes_sent, 1000u);
}

TEST(TopologyTest, DirectDelivery) {
  sim::Simulator sim;
  Topology topo(sim, 7);
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_duplex_link(a, b, LinkConfig{});
  topo.compute_routes();
  int delivered = 0;
  topo.node(b).set_local_deliver([&](Packet) { ++delivered; });
  topo.send(make_packet(a, b, 100));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(TopologyTest, MultiHopForwarding) {
  sim::Simulator sim;
  Topology topo(sim, 7);
  const NodeId a = topo.add_node("a");
  const NodeId r = topo.add_node("router");
  const NodeId b = topo.add_node("b");
  LinkConfig cfg;
  cfg.propagation_delay = 5_ms;
  topo.add_duplex_link(a, r, cfg);
  topo.add_duplex_link(r, b, cfg);
  topo.compute_routes();
  SimTime arrival = SimTime::zero();
  topo.node(b).set_local_deliver([&](Packet) { arrival = sim.now(); });
  topo.send(make_packet(a, b, 0));
  sim.run();
  EXPECT_GT(arrival, 10_ms);  // two propagation hops
  EXPECT_EQ(topo.node(r).packets_forwarded(), 1u);
}

TEST(TopologyTest, ShortestDelayPathChosen) {
  sim::Simulator sim;
  Topology topo(sim, 7);
  const NodeId a = topo.add_node("a");
  const NodeId slow = topo.add_node("slow");
  const NodeId fast = topo.add_node("fast");
  const NodeId b = topo.add_node("b");
  LinkConfig slow_cfg;
  slow_cfg.propagation_delay = 50_ms;
  LinkConfig fast_cfg;
  fast_cfg.propagation_delay = 5_ms;
  topo.add_duplex_link(a, slow, slow_cfg);
  topo.add_duplex_link(slow, b, slow_cfg);
  topo.add_duplex_link(a, fast, fast_cfg);
  topo.add_duplex_link(fast, b, fast_cfg);
  topo.compute_routes();
  topo.node(b).set_local_deliver([](Packet) {});
  topo.send(make_packet(a, b, 0));
  sim.run();
  EXPECT_EQ(topo.node(fast).packets_forwarded(), 1u);
  EXPECT_EQ(topo.node(slow).packets_forwarded(), 0u);
}

TEST(TopologyTest, ExplicitRouteOverride) {
  sim::Simulator sim;
  Topology topo(sim, 7);
  const NodeId a = topo.add_node("a");
  const NodeId r1 = topo.add_node("r1");
  const NodeId r2 = topo.add_node("r2");
  const NodeId b = topo.add_node("b");
  LinkConfig cfg;
  topo.add_duplex_link(a, r1, cfg);
  topo.add_duplex_link(r1, b, cfg);
  topo.add_duplex_link(a, r2, cfg);
  topo.add_duplex_link(r2, b, cfg);
  topo.compute_routes();
  // Pin a->b through r2 regardless of what Dijkstra chose.
  topo.node(a).set_route(b, topo.link_between(a, r2));
  topo.node(b).set_local_deliver([](Packet) {});
  topo.send(make_packet(a, b, 0));
  sim.run();
  EXPECT_EQ(topo.node(r2).packets_forwarded(), 1u);
}

TEST(TopologyTest, FindByName) {
  sim::Simulator sim;
  Topology topo(sim, 7);
  topo.add_node("ash.ucsb.edu", "ucsb.edu");
  const NodeId b = topo.add_node("bell.uiuc.edu", "uiuc.edu");
  EXPECT_EQ(topo.find("bell.uiuc.edu"), b);
  EXPECT_EQ(topo.node(b).site(), "uiuc.edu");
}

TEST(TopologyTest, LinkBetweenReturnsNullWhenNotAdjacent) {
  sim::Simulator sim;
  Topology topo(sim, 7);
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  topo.add_duplex_link(a, b, LinkConfig{});
  EXPECT_NE(topo.link_between(a, b), nullptr);
  EXPECT_EQ(topo.link_between(a, c), nullptr);
}

}  // namespace
}  // namespace lsl::net
