#include <gtest/gtest.h>

#include <cmath>

#include "nws/forecasters.hpp"
#include "nws/monitor.hpp"
#include "util/rng.hpp"

namespace lsl::nws {
namespace {

TEST(ForecasterTest, LastValueTracksInput) {
  LastValueForecaster f;
  EXPECT_FALSE(f.ready());
  f.observe(10.0);
  f.observe(20.0);
  EXPECT_TRUE(f.ready());
  EXPECT_DOUBLE_EQ(f.predict(), 20.0);
}

TEST(ForecasterTest, RunningMeanConverges) {
  RunningMeanForecaster f;
  f.observe(10.0);
  f.observe(20.0);
  f.observe(30.0);
  EXPECT_DOUBLE_EQ(f.predict(), 20.0);
}

TEST(ForecasterTest, SlidingMeanForgetsOldData) {
  SlidingMeanForecaster f(2);
  f.observe(100.0);
  f.observe(10.0);
  f.observe(20.0);
  EXPECT_DOUBLE_EQ(f.predict(), 15.0);
}

TEST(ForecasterTest, SlidingMedianRobustToOutliers) {
  SlidingMedianForecaster f(5);
  for (const double v : {50.0, 51.0, 49.0, 50.0, 1.0}) {
    f.observe(v);  // one bogus probe
  }
  EXPECT_DOUBLE_EQ(f.predict(), 50.0);
}

TEST(ForecasterTest, SlidingMedianEvenWindow) {
  SlidingMedianForecaster f(4);
  for (const double v : {10.0, 20.0, 30.0, 40.0}) {
    f.observe(v);
  }
  EXPECT_DOUBLE_EQ(f.predict(), 25.0);
}

TEST(ForecasterTest, EwmaSmoothing) {
  EwmaForecaster f(0.5);
  f.observe(10.0);
  EXPECT_DOUBLE_EQ(f.predict(), 10.0);
  f.observe(20.0);
  EXPECT_DOUBLE_EQ(f.predict(), 15.0);
}

TEST(ForecasterTest, AdaptivePrefersMedianOnSpikySeries) {
  AdaptiveForecaster f;
  Rng rng(42);
  // Stable series with rare deep outliers: the sliding median should win.
  for (int i = 0; i < 200; ++i) {
    const double v = rng.chance(0.1) ? 5.0 : 50.0 + rng.uniform(-1.0, 1.0);
    f.observe(v);
  }
  EXPECT_NEAR(f.predict(), 50.0, 3.0);
}

TEST(ForecasterTest, AdaptiveTracksConstantSeriesExactly) {
  AdaptiveForecaster f;
  for (int i = 0; i < 20; ++i) {
    f.observe(33.0);
  }
  EXPECT_DOUBLE_EQ(f.predict(), 33.0);
}

TEST(ForecasterTest, AdaptiveReportsBestMember) {
  AdaptiveForecaster f;
  for (int i = 0; i < 50; ++i) {
    f.observe(10.0);
  }
  EXPECT_FALSE(f.best_member().empty());
}

TEST(NoiseModelTest, SamplesCenteredOnTruth) {
  NoiseModel noise;
  noise.outlier_probability = 0.0;
  Rng rng(5);
  double sum = 0.0;
  constexpr int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    sum += noise.sample(100.0, rng);
  }
  // Lognormal mean is exp(sigma^2/2) above the median.
  const double expected = 100.0 * std::exp(0.15 * 0.15 / 2.0);
  EXPECT_NEAR(sum / kSamples, expected, 2.0);
}

TEST(NoiseModelTest, OutliersPullLow) {
  NoiseModel noise;
  noise.lognormal_sigma = 0.01;
  noise.outlier_probability = 1.0;
  noise.outlier_factor = 0.25;
  Rng rng(6);
  EXPECT_NEAR(noise.sample(100.0, rng), 25.0, 2.0);
}

TEST(MonitorTest, SiteAggregationSharesForecasts) {
  // Two hosts at site A, one at site B: A-hosts must get identical
  // forecasts toward B (they share the wide-area measurement).
  PerformanceMonitor monitor({"a.edu", "a.edu", "b.edu"}, NoiseModel{}, 9);
  const auto truth = [](std::size_t, std::size_t) {
    return Bandwidth::mbps(40);
  };
  for (int i = 0; i < 10; ++i) {
    monitor.observe_epoch(truth);
  }
  const auto f0 = monitor.forecast(0, 2);
  const auto f1 = monitor.forecast(1, 2);
  EXPECT_DOUBLE_EQ(f0.megabits_per_second(), f1.megabits_per_second());
  EXPECT_NEAR(f0.megabits_per_second(), 40.0, 8.0);
}

TEST(MonitorTest, IntraSiteIsFast) {
  PerformanceMonitor monitor({"a.edu", "a.edu"}, NoiseModel{}, 9);
  EXPECT_GE(monitor.forecast(0, 1).megabits_per_second(), 500.0);
}

TEST(MonitorTest, NoForecastBeforeMeasurement) {
  PerformanceMonitor monitor({"a.edu", "b.edu"}, NoiseModel{}, 9);
  EXPECT_DOUBLE_EQ(monitor.forecast(0, 1).bits_per_second(), 0.0);
}

TEST(MonitorTest, MatrixHasFiniteCostsAfterEpochs) {
  PerformanceMonitor monitor({"a.edu", "b.edu", "c.edu"}, NoiseModel{}, 10);
  const auto truth = [](std::size_t a, std::size_t b) {
    return Bandwidth::mbps(10.0 + static_cast<double>(a + b));
  };
  for (int i = 0; i < 5; ++i) {
    monitor.observe_epoch(truth);
  }
  const auto matrix = monitor.build_matrix();
  ASSERT_EQ(matrix.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) {
        EXPECT_LT(matrix.cost(i, j), sched::kInfiniteCost);
      }
    }
  }
  EXPECT_EQ(matrix.site(0), "a.edu");
}

TEST(MonitorTest, MatrixRoughlyOrderPreserving) {
  // The paper only needs an order-preserving metric: a clearly faster pair
  // must get a clearly cheaper edge.
  PerformanceMonitor monitor({"a.edu", "b.edu", "c.edu"}, NoiseModel{}, 11);
  const auto truth = [](std::size_t a, std::size_t b) {
    const bool fast = (a == 0 && b == 1) || (a == 1 && b == 0);
    return Bandwidth::mbps(fast ? 90.0 : 9.0);
  };
  for (int i = 0; i < 20; ++i) {
    monitor.observe_epoch(truth);
  }
  const auto matrix = monitor.build_matrix();
  EXPECT_LT(matrix.cost(0, 1), matrix.cost(0, 2));
  EXPECT_LT(matrix.cost(0, 1), matrix.cost(2, 1));
}

TEST(MonitorTest, DeterministicForSeed) {
  const auto run = [] {
    PerformanceMonitor m({"a.edu", "b.edu"}, NoiseModel{}, 77);
    for (int i = 0; i < 8; ++i) {
      m.observe_epoch(
          [](std::size_t, std::size_t) { return Bandwidth::mbps(30); });
    }
    return m.forecast(0, 1).megabits_per_second();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace lsl::nws
