// Observability layer: metrics registry semantics, histogram quantiles
// against the exact percentile in util/stats, trace-ring overwrite, and
// Chrome trace_event JSON well-formedness.
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace lsl {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker, enough to assert that the
// exporters emit structurally valid documents (no external dependency).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  [[nodiscard]] bool valid() {
    pos_ = 0;
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;  // accept any escaped character
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }

  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!value()) {
        return false;
      }
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != '}') {
      return false;
    }
    ++pos_;
    return true;
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value()) {
        return false;
      }
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != ']') {
      return false;
    }
    ++pos_;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Instruments

TEST(ObsMetricsTest, CounterSemantics) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Lazy registration returns the same instrument for the same name.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsMetricsTest, GaugeTracksHighWater) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("test.gauge");
  g.set(5.0);
  g.set(9.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.high_water(), 9.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.5);
  EXPECT_DOUBLE_EQ(g.high_water(), 9.0);
}

TEST(ObsMetricsTest, HistogramBucketsAndMoments) {
  obs::Registry reg;
  obs::Histogram& h =
      reg.histogram("test.hist", obs::linear_buckets(0.0, 10.0, 3));
  // Bounds 10, 20, 30 plus an overflow bucket.
  h.observe(5.0);    // <= 10
  h.observe(10.0);   // <= 10 (bounds are upper-inclusive)
  h.observe(15.0);   // <= 20
  h.observe(100.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 130.0);
  EXPECT_DOUBLE_EQ(h.mean(), 32.5);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(ObsMetricsTest, HistogramQuantileMatchesExactPercentile) {
  obs::Registry reg;
  const double width = 5.0;
  obs::Histogram& h =
      reg.histogram("test.quantiles", obs::linear_buckets(0.0, width, 40));
  std::vector<double> xs;
  // Deterministic, non-uniform sample spread across the bucket range.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double v = 1.0 + static_cast<double>(state % 19000) / 100.0;
    xs.push_back(v);
    h.observe(v);
  }
  // Bucketed quantiles are exact to within a bucket width of the true
  // order-statistic percentile (a second width absorbs the two methods'
  // boundary conventions).
  for (const double q : {0.10, 0.25, 0.50, 0.90, 0.99}) {
    EXPECT_NEAR(h.quantile(q), percentile(xs, q), 2 * width)
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(ObsMetricsTest, ExponentialHistogramLayoutAndTail) {
  obs::Registry reg;
  // Bounds 1, 2, 4, ..., 128 plus the overflow bucket.
  obs::Histogram& h = reg.histogram_exp("test.exp", 1.0, 8);
  ASSERT_EQ(h.bounds().size(), 8u);
  for (std::size_t i = 0; i < h.bounds().size(); ++i) {
    EXPECT_DOUBLE_EQ(h.bounds()[i], static_cast<double>(1u << i));
  }
  // Same name returns the same instrument regardless of constructor used.
  EXPECT_EQ(&reg.histogram_exp("test.exp", 1.0, 8), &h);
  EXPECT_EQ(&reg.histogram("test.exp", {}), &h);

  // A heavy-tailed sample: 990 fast observations, 10 slow outliers. The
  // tail quantiles must see the outliers even though the mean barely moves.
  for (int i = 0; i < 990; ++i) {
    h.observe(1.5);
  }
  for (int i = 0; i < 10; ++i) {
    h.observe(100.0);
  }
  EXPECT_LE(h.quantile(0.90), 2.0);
  EXPECT_GT(h.quantile(0.999), 64.0);
  EXPECT_LE(h.quantile(0.999), 128.0);
}

TEST(ObsMetricsTest, JsonExportsTailQuantiles) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram_exp("test.latency", 1.0, 6);
  for (int i = 0; i < 100; ++i) {
    h.observe(static_cast<double>(i % 10) + 1.0);
  }
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

TEST(ObsMetricsTest, PromExportFormat) {
  obs::Registry reg;
  reg.counter("tcp.conn.retransmits").inc(3);
  reg.gauge("lsl.depot.buffer_occupancy").set(4096.0);
  reg.gauge("lsl.depot.buffer_occupancy").set(512.0);
  obs::Histogram& h =
      reg.histogram("tcp.conn.rtt_ms", obs::exponential_buckets(1.0, 2.0, 3));
  h.observe(1.5);  // <= 2
  h.observe(3.0);  // <= 4
  h.observe(50.0);  // overflow
  const std::string prom = reg.to_prom();

  // Dotted names map to underscores, with TYPE lines per series.
  EXPECT_NE(prom.find("# TYPE tcp_conn_retransmits counter\n"
                      "tcp_conn_retransmits 3\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lsl_depot_buffer_occupancy 512\n"), std::string::npos);
  // Gauges publish their high-water mark as a companion series.
  EXPECT_NE(prom.find("lsl_depot_buffer_occupancy_high_water 4096\n"),
            std::string::npos);
  // Histogram buckets are cumulative with an +Inf terminal bucket.
  EXPECT_NE(prom.find("# TYPE tcp_conn_rtt_ms histogram"), std::string::npos);
  EXPECT_NE(prom.find("tcp_conn_rtt_ms_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tcp_conn_rtt_ms_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tcp_conn_rtt_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("tcp_conn_rtt_ms_count 3\n"), std::string::npos);
  EXPECT_NE(prom.find("tcp_conn_rtt_ms_sum 54.5\n"), std::string::npos);
}

TEST(ObsMetricsTest, RegistryResetKeepsRegistrations) {
  obs::Registry reg;
  reg.counter("a").inc(7);
  reg.gauge("b").set(3.0);
  reg.histogram("c", obs::linear_buckets(1.0, 1.0, 2)).observe(1.5);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter("a").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("b").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("b").high_water(), 0.0);
  EXPECT_EQ(reg.histogram("c", {}).count(), 0u);
}

TEST(ObsMetricsTest, RegistryJsonIsWellFormed) {
  obs::Registry reg;
  reg.counter("tcp.conn.retransmits").inc(3);
  reg.gauge("lsl.depot.buffer_occupancy").set(4096.0);
  reg.histogram("tcp.conn.rtt_ms", obs::exponential_buckets(1.0, 2.0, 4))
      .observe(7.5);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"tcp.conn.retransmits\": 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace recorder

TEST(ObsTraceTest, RingOverwritesOldestEvents) {
  obs::TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.instant(SimTime::seconds(i), "test", "tick",
                static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, 6 + i);  // oldest-first, last four survive
  }
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST(ObsTraceTest, ChromeTraceJsonShape) {
  obs::TraceRecorder rec(16);
  rec.begin(SimTime::milliseconds(1), "tcp", "handshake", 7);
  rec.end(SimTime::milliseconds(3), "tcp", "handshake", 7);
  rec.instant(SimTime::milliseconds(4), "tcp", "tcp.retransmit");
  rec.counter(SimTime::milliseconds(5), "exp", "acked_bytes", 1234.0);
  rec.complete(SimTime::milliseconds(2), SimTime::milliseconds(6), "lsl",
               "lsl.relay", 9);
  const std::string json = rec.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json.front(), '[');
  // Every phase we emitted appears, with ts in microseconds.
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 6000.000"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"handshake\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"tcp\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 1234"), std::string::npos);
}

TEST(ObsTraceTest, SeqTraceMirrorsSamplesIntoInstalledRecorder) {
  obs::TraceRecorder rec(16);
  obs::set_tracer(&rec);
  exp::SeqTrace trace;
  trace.add_sample(SimTime::seconds(1), 100);
  trace.add_sample(SimTime::seconds(2), 250);
  obs::set_tracer(nullptr);
  trace.add_sample(SimTime::seconds(3), 400);  // recorder detached: dropped

  ASSERT_EQ(trace.samples().size(), 3u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, obs::TracePhase::kCounter);
  EXPECT_DOUBLE_EQ(events[0].value, 100.0);
  EXPECT_DOUBLE_EQ(events[1].value, 250.0);
  EXPECT_STREQ(events[1].name, "exp.seq.acked_bytes");
}

// ---------------------------------------------------------------------------
// Kernel profile

TEST(ObsKernelTest, ProfileCountsCategoriesAndHighWater) {
  sim::Simulator simulator;
  simulator.set_profiling(true);
  for (int i = 0; i < 5; ++i) {
    simulator.schedule_after(SimTime::milliseconds(i + 1), [] {}, "test.tick");
  }
  const auto cancelled =
      simulator.schedule_after(SimTime::seconds(1), [] {}, "test.tick");
  simulator.schedule_after(SimTime::milliseconds(10), [] {});  // untagged
  ASSERT_TRUE(simulator.cancel(cancelled));
  simulator.run();

  const auto profile = simulator.profile();
  EXPECT_EQ(profile.events_scheduled, 7u);
  EXPECT_EQ(profile.events_executed, 6u);
  EXPECT_EQ(profile.events_cancelled, 1u);
  EXPECT_GE(profile.queue_high_water, 7u);
  // The cancelled event is tombstoned, never dispatched: the clock stops at
  // the last executed event.
  EXPECT_EQ(profile.sim_time, SimTime::milliseconds(10));
  EXPECT_GT(profile.wall_seconds, 0.0);
  ASSERT_EQ(profile.category_counts.size(), 1u);
  EXPECT_EQ(profile.category_counts[0].first, "test.tick");
  EXPECT_EQ(profile.category_counts[0].second, 6u);
  EXPECT_FALSE(profile.str().empty());
}

TEST(ObsKernelTest, ProfileMergeAccumulates) {
  sim::KernelProfile a;
  a.events_scheduled = 10;
  a.events_executed = 8;
  a.queue_high_water = 4;
  a.sim_time = SimTime::seconds(2);
  a.wall_seconds = 0.5;
  a.category_counts = {{"net.link.tx", 6}, {"tcp.rto", 2}};
  sim::KernelProfile b;
  b.events_scheduled = 5;
  b.events_executed = 5;
  b.queue_high_water = 9;
  b.sim_time = SimTime::seconds(1);
  b.wall_seconds = 0.25;
  b.category_counts = {{"net.link.tx", 1}};

  a.merge_from(b);
  EXPECT_EQ(a.events_scheduled, 15u);
  EXPECT_EQ(a.events_executed, 13u);
  EXPECT_EQ(a.queue_high_water, 9u);
  EXPECT_EQ(a.sim_time, SimTime::seconds(3));
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.75);
  ASSERT_EQ(a.category_counts.size(), 2u);
  EXPECT_EQ(a.category_counts[0].first, "net.link.tx");
  EXPECT_EQ(a.category_counts[0].second, 7u);
}

TEST(ObsKernelTest, ExportMetricsPublishesKernelGauges) {
  sim::Simulator simulator;
  simulator.schedule_after(SimTime::milliseconds(1), [] {});
  simulator.run();
  obs::Registry reg;
  simulator.profile().export_metrics(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.kernel.events_executed").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.kernel.sim_seconds").value(), 0.001);
  EXPECT_TRUE(JsonChecker(reg.to_json()).valid());
}

}  // namespace
}  // namespace lsl
