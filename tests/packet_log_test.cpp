#include <gtest/gtest.h>

#include <sstream>

#include "exp/packet_log.hpp"
#include "fixtures.hpp"

namespace lsl::exp {
namespace {

using namespace lsl::time_literals;
using testing::TwoNodeNet;
using testing::run_bulk_transfer;

net::LinkConfig wan(double loss = 0.0) {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(100);
  cfg.propagation_delay = 5_ms;
  cfg.queue_capacity_bytes = mib(1);
  cfg.loss_rate = loss;
  return cfg;
}

TEST(PacketLogTest, CapturesHandshakeShape) {
  TwoNodeNet net(wan());
  PacketLog log;
  log.attach(net.topo->link(0), net.sim);  // a -> b direction
  log.attach(net.topo->link(1), net.sim);  // b -> a direction

  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   10'000, tcp::TcpOptions{});
  ASSERT_TRUE(r.completed);
  ASSERT_GE(log.size(), 6u);

  // First three packets on the wire: SYN, SYN+ACK, pure ACK.
  const auto& e = log.entries();
  EXPECT_TRUE(e[0].has(net::kFlagSyn));
  EXPECT_FALSE(e[0].has(net::kFlagAck));
  EXPECT_TRUE(e[1].has(net::kFlagSyn));
  EXPECT_TRUE(e[1].has(net::kFlagAck));
  EXPECT_TRUE(e[2].has(net::kFlagAck));
  EXPECT_FALSE(e[2].has(net::kFlagSyn));
  EXPECT_EQ(e[2].payload, 0u);

  // Exactly one SYN each way (no loss), and FINs from both sides.
  EXPECT_EQ(log.count_flag(net::kFlagSyn), 2u);
  EXPECT_EQ(log.count_flag(net::kFlagFin), 2u);
  EXPECT_EQ(log.count_flag(net::kFlagRst), 0u);
}

TEST(PacketLogTest, NoRetransmissionsOnCleanLink) {
  TwoNodeNet net(wan());
  PacketLog log;
  log.attach(net.topo->link(0), net.sim);
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   mib(1), tcp::TcpOptions{}.with_buffers(
                                               kib(256)));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(log.retransmitted_segments(), 0u);
}

TEST(PacketLogTest, AckBlackoutProducesVisibleWireRetransmissions) {
  // The tap records *delivered* packets, so data dropped at the link never
  // shows up twice. An ACK-path blackout forces an RTO: the go-back-N
  // rewind re-sends data the receiver already holds, which the data
  // direction's log sees as duplicate sequence ranges.
  TwoNodeNet net(wan(), /*seed=*/77);
  PacketLog log;
  log.attach(net.topo->link(0), net.sim);
  net.sim.schedule_at(100_ms, [&] {
    net.topo->link(1).set_loss_rate(1.0);  // b -> a: the ACK path
  });
  net.sim.schedule_at(3_s, [&] { net.topo->link(1).set_loss_rate(0.0); });
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   mib(1),
                                   tcp::TcpOptions{}.with_buffers(kib(256)));
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.sender_stats.timeouts, 0u);
  EXPECT_GT(log.retransmitted_segments(), 0u);
}

TEST(PacketLogTest, FilterSelectsBySeq) {
  TwoNodeNet net(wan());
  PacketLog log;
  log.attach(net.topo->link(0), net.sim);
  (void)run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, 50'000,
                          tcp::TcpOptions{});
  const auto first_window = log.filter(
      [](const PacketLogEntry& e) { return e.payload > 0 && e.seq < 3000; });
  EXPECT_GE(first_window.size(), 2u);
  for (const auto& entry : first_window) {
    EXPECT_LT(entry.seq, 3000u);
  }
}

TEST(PacketLogTest, RendersReadableLines) {
  TwoNodeNet net(wan());
  PacketLog log;
  log.attach(net.topo->link(0), net.sim);
  (void)run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, 5'000,
                          tcp::TcpOptions{});
  std::ostringstream os;
  log.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("S seq=0"), std::string::npos);  // the SYN line
  EXPECT_NE(out.find(" > "), std::string::npos);
  EXPECT_GT(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(PacketLogTest, AdvertisedWindowVisibleOnWire) {
  TwoNodeNet net(wan());
  PacketLog log;
  log.attach(net.topo->link(1), net.sim);  // ACK direction
  (void)run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, 100'000,
                          tcp::TcpOptions{});
  // Receiver drains promptly, so most ACKs advertise a large window.
  std::size_t wide = 0;
  for (const auto& entry : log.entries()) {
    if (entry.has(net::kFlagAck) && entry.wnd >= 32 * kKiB) {
      ++wide;
    }
  }
  EXPECT_GT(wide, log.size() / 2);
}

}  // namespace
}  // namespace lsl::exp
