// The parallel trial engine's determinism contract: any --jobs value
// produces bit-identical results, metrics, and traces (docs/performance.md).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testbed/grid.hpp"
#include "testbed/sweep.hpp"
#include "util/thread_pool.hpp"

namespace lsl {
namespace {

TEST(ThreadPoolTest, RunsJobOnEveryWorkerAndCaller) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_all([&](std::size_t worker) { hits[worker].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "worker " << i;
  }
}

TEST(ParallelTest, RunsEveryTrialExactlyOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{8}}) {
    std::vector<std::atomic<int>> hits(100);
    exp::TrialOptions options;
    options.jobs = jobs;
    options.scope_metrics = false;
    exp::for_each_trial(hits.size(), options, [&](std::size_t trial) {
      hits[trial].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " trial " << i;
    }
  }
}

TEST(ParallelTest, MapTrialsReturnsResultsInTrialOrder) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{8}}) {
    exp::TrialOptions options;
    options.jobs = jobs;
    options.chunk = 3;  // force several claims per worker
    const auto results = exp::map_trials<std::size_t>(
        64, options, [](std::size_t trial) { return trial * trial; });
    ASSERT_EQ(results.size(), 64u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelTest, RethrowsLowestTrialIndexFailure) {
  // Every trial throws; the engine must surface trial 0's exception no
  // matter which workers failed first.
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    exp::TrialOptions options;
    options.jobs = jobs;
    options.chunk = 1;
    try {
      exp::for_each_trial(32, options, [](std::size_t trial) {
        throw std::runtime_error("trial " + std::to_string(trial));
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "trial 0") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelTest, MergesPerTrialMetricsInTrialOrder) {
  constexpr std::size_t kTrials = 40;
  // Counters accumulate; gauges keep the last value in trial order. Both
  // must come out identical to the serial run for every jobs value.
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{8}}) {
    obs::Registry parent;
    {
      obs::ScopedRegistry scope(parent);
      exp::TrialOptions options;
      options.jobs = jobs;
      exp::for_each_trial(kTrials, options, [](std::size_t trial) {
        obs::Registry::global().counter("test.trials").inc(trial);
        obs::Registry::global().gauge("test.last_trial").set(
            static_cast<double>(trial));
      });
    }
    EXPECT_EQ(parent.counter("test.trials").value(),
              kTrials * (kTrials - 1) / 2)
        << "jobs=" << jobs;
    EXPECT_EQ(parent.gauge("test.last_trial").value(),
              static_cast<double>(kTrials - 1))
        << "jobs=" << jobs;
  }
}

TEST(ParallelTest, GaugeHighWaterResetsPerTrialAndMergesAsMax) {
  // Regression: the serial path used to run trials directly against the
  // caller's registry, so gauge values accumulated across trials and the
  // merged high-water mark depended on --jobs. Every jobs value must see
  // the per-trial peak (reset each trial), merged as the max over trials.
  constexpr std::size_t kTrials = 12;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{8}}) {
    obs::Registry parent;
    {
      obs::ScopedRegistry scope(parent);
      exp::TrialOptions options;
      options.jobs = jobs;
      exp::for_each_trial(kTrials, options, [](std::size_t trial) {
        obs::Gauge& g = obs::Registry::global().gauge("test.occupancy");
        // Occupancy rises to a per-trial peak and drains back to zero. If
        // trial state leaked across trials, the accumulated peak would be
        // the sum of all trials' peaks instead of the largest one.
        const double peak = static_cast<double>(trial % 5) + 1.0;
        g.add(peak);
        g.add(-peak);
      });
    }
    EXPECT_DOUBLE_EQ(parent.gauge("test.occupancy").high_water(), 5.0)
        << "jobs=" << jobs;
    EXPECT_DOUBLE_EQ(parent.gauge("test.occupancy").value(), 0.0)
        << "jobs=" << jobs;
  }
}

TEST(ParallelTest, AppendsPerTrialTracesInTrialOrder) {
  constexpr std::size_t kTrials = 24;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{8}}) {
    obs::TraceRecorder parent;
    obs::set_tracer(&parent);
    exp::TrialOptions options;
    options.jobs = jobs;
    options.scope_metrics = false;
    exp::for_each_trial(kTrials, options, [](std::size_t trial) {
      obs::tracer()->record(
          {.ts = SimTime::milliseconds(static_cast<std::int64_t>(trial)),
           .name = "trial",
           .phase = obs::TracePhase::kCounter,
           .value = static_cast<double>(trial)});
    });
    obs::set_tracer(nullptr);
    const auto events = parent.snapshot();
    ASSERT_EQ(events.size(), kTrials) << "jobs=" << jobs;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].value, static_cast<double>(i)) << "jobs=" << jobs;
    }
  }
}

/// Exact equality: the contract is bitwise-identical, not approximately
/// equal, so EXPECT_EQ on doubles is intentional throughout.
void expect_identical(const testbed::SweepResult& a,
                      const testbed::SweepResult& b, std::size_t jobs) {
  EXPECT_EQ(a.fraction_scheduled, b.fraction_scheduled) << "jobs=" << jobs;
  EXPECT_EQ(a.scheduled_cases, b.scheduled_cases) << "jobs=" << jobs;
  EXPECT_EQ(a.total_measurements, b.total_measurements) << "jobs=" << jobs;
  EXPECT_EQ(a.mean_path_hops, b.mean_path_hops) << "jobs=" << jobs;
  ASSERT_EQ(a.speedups_by_size.size(), b.speedups_by_size.size())
      << "jobs=" << jobs;
  auto it_a = a.speedups_by_size.begin();
  auto it_b = b.speedups_by_size.begin();
  for (; it_a != a.speedups_by_size.end(); ++it_a, ++it_b) {
    EXPECT_EQ(it_a->first, it_b->first) << "jobs=" << jobs;
    ASSERT_EQ(it_a->second.size(), it_b->second.size())
        << "jobs=" << jobs << " size=" << it_a->first;
    for (std::size_t i = 0; i < it_a->second.size(); ++i) {
      EXPECT_EQ(it_a->second[i], it_b->second[i])
          << "jobs=" << jobs << " size=" << it_a->first << " case " << i;
    }
  }
}

TEST(ParallelSweepTest, SweepIsBitwiseIdenticalForAnyJobsValue) {
  testbed::PlanetLabConfig pool;
  pool.sites = 14;  // small pool: enough depot routes, fast enough for CI
  const auto grid = testbed::SyntheticGrid::planetlab(pool, 2004);
  testbed::SweepConfig config;
  config.max_size_exp = 3;
  config.iterations = 2;
  config.max_cases = 30;
  config.monitor_epochs = 5;

  config.jobs = 1;
  const auto serial = testbed::run_speedup_sweep(grid, config, 42);
  ASSERT_GT(serial.scheduled_cases, 0u);

  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    config.jobs = jobs;
    const auto parallel = testbed::run_speedup_sweep(grid, config, 42);
    expect_identical(serial, parallel, jobs);
  }
}

}  // namespace
}  // namespace lsl
