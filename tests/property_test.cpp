// Cross-cutting randomized property tests:
//   * epsilon tree shaping on site-structured graphs (Figs 6-8 generalized),
//   * multicast staging over random trees delivers to every leaf exactly,
//   * the session-header decoder never accepts corrupted input silently
//     wrong (round-trip equality) and never crashes on mutated bytes.
#include <cmath>
#include <map>
#include <gtest/gtest.h>

#include <set>

#include "exp/harness.hpp"
#include "lsl/header.hpp"
#include "sched/minimax.hpp"
#include "util/rng.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;

// ---------------------------------------------------------------------------
// Tree shaping on site-structured graphs.

class TreeShapingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeShapingTest, DampedTreeNeverUsesMoreRelayEdges) {
  // Hosts grouped into sites; inter-site base costs with small per-host
  // jitter (the paper's world). For every root: the eps-damped tree must
  // use at most as many relay hops as the strict tree, and its path costs
  // may exceed the strict optimum by at most the compounded margin.
  Rng rng(GetParam());
  const std::size_t sites = 3 + rng.pick_index(4);
  std::vector<std::size_t> site_of;
  for (std::size_t s = 0; s < sites; ++s) {
    const std::size_t hosts = 1 + rng.pick_index(3);
    for (std::size_t k = 0; k < hosts; ++k) {
      site_of.push_back(s);
    }
  }
  const std::size_t n = site_of.size();
  std::vector<double> site_cost(sites * sites, 0.0);
  for (std::size_t i = 0; i < sites; ++i) {
    for (std::size_t j = i + 1; j < sites; ++j) {
      const double c = rng.uniform(2.0, 10.0);
      site_cost[i * sites + j] = c;
      site_cost[j * sites + i] = c;
    }
  }
  sched::CostMatrix matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      const double base = site_of[i] == site_of[j]
                              ? 0.3
                              : site_cost[site_of[i] * sites + site_of[j]];
      matrix.set_cost(i, j, base * rng.uniform(1.0, 1.03));
    }
  }

  constexpr double kEps = 0.1;
  for (std::size_t root = 0; root < n; ++root) {
    const auto strict = sched::build_mmp_tree(matrix, root, {.epsilon = 0.0});
    const auto damped =
        sched::build_mmp_tree(matrix, root, {.epsilon = kEps});
    std::size_t strict_hops = 0;
    std::size_t damped_hops = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == root) {
        continue;
      }
      const auto sp = strict.path_to(v);
      const auto dp = damped.path_to(v);
      ASSERT_FALSE(sp.empty());
      ASSERT_FALSE(dp.empty());
      strict_hops += sp.size() - 2;
      damped_hops += dp.size() - 2;
      // Damped path is never better than the optimum, and within the
      // compounded equivalence margin of it.
      const double opt = strict.cost[v];
      const double got = sched::minimax_path_cost(matrix, dp);
      EXPECT_GE(got + 1e-12, opt);
      EXPECT_LE(got, opt * std::pow(1.0 + kEps, static_cast<double>(n)));
    }
    EXPECT_LE(damped_hops, strict_hops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeShapingTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Random multicast staging trees.

class MulticastFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MulticastFuzzTest, EveryLeafReceivesThePayloadExactlyOnce) {
  Rng rng(GetParam());
  exp::SimHarness h(GetParam() ^ 0xACE);

  // Random tree over 4-9 depot hosts plus a source.
  const std::size_t nodes = 4 + rng.pick_index(6);
  const auto source = h.add_host("source");
  std::vector<net::NodeId> members;
  for (std::size_t i = 0; i < nodes; ++i) {
    members.push_back(h.add_host("m" + std::to_string(i)));
  }
  // Tree structure: node i's parent is a random earlier node.
  session::MulticastTree tree;
  tree.entries.push_back({members[0], 0});
  for (std::size_t i = 1; i < nodes; ++i) {
    tree.entries.push_back(
        {members[i], static_cast<std::uint16_t>(rng.pick_index(i))});
  }
  // Physical topology: star around the root member (ample capacity) plus
  // the source attached to the root.
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(200);
  link.propagation_delay = 3_ms;
  h.add_link(source, members[0], link);
  for (std::size_t i = 1; i < nodes; ++i) {
    h.add_link(members[0], members[i], link);
  }
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(kib(512));
  cfg.user_buffer_bytes = mib(1);
  h.deploy(cfg);

  // Leaves: tree members with no children.
  std::set<net::NodeId> leaves;
  for (std::size_t i = 0; i < tree.entries.size(); ++i) {
    if (tree.children_of(i).empty()) {
      leaves.insert(tree.entries[i].node);
    }
  }
  ASSERT_FALSE(leaves.empty());

  std::map<net::NodeId, std::uint64_t> delivered;
  for (const auto leaf : leaves) {
    h.depot(leaf).on_session_complete =
        [&, leaf](const session::SessionRecord& rec) {
          delivered[leaf] += rec.bytes;
        };
  }

  const std::uint64_t payload = kib(256) + rng.pick_index(kib(256));
  session::TransferSpec spec;
  spec.dst = members[0];
  spec.multicast = tree;
  spec.payload_bytes = payload;
  spec.tcp = tcp::TcpOptions{}.with_buffers(kib(512));
  session::LslSource::start(h.stack(source), spec, h.rng());
  h.simulator().run(h.simulator().now() + 300_s);

  ASSERT_EQ(delivered.size(), leaves.size());
  for (const auto& [leaf, bytes] : delivered) {
    EXPECT_EQ(bytes, payload) << "leaf " << leaf;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MulticastFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Header decoder robustness.

class HeaderFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeaderFuzzTest, MutatedHeadersNeverCrashAndRoundTripsAreExact) {
  Rng rng(GetParam());
  // Build a random valid header.
  session::SessionHeader h;
  h.session_id = session::SessionId::random(rng);
  h.src = static_cast<net::NodeId>(rng.next_below(1000));
  h.dst = static_cast<net::NodeId>(rng.next_below(1000));
  h.src_port = static_cast<net::Port>(rng.next_below(65536));
  h.dst_port = session::kLslPort;
  h.payload_bytes = rng.next_below(1ULL << 40);
  const std::size_t hops = rng.pick_index(5);
  for (std::size_t i = 0; i < hops; ++i) {
    h.loose_route.push_back(static_cast<net::NodeId>(rng.next_below(1000)));
  }
  h.async_session = rng.chance(0.5);
  if (rng.chance(0.4)) {
    const auto count = static_cast<std::uint16_t>(2 + rng.pick_index(6));
    h.stripe = session::StripeInfo{
        static_cast<std::uint16_t>(rng.pick_index(count)), count};
  }
  if (rng.chance(0.3)) {
    session::MulticastTree tree;
    const std::size_t members = 2 + rng.pick_index(6);
    tree.entries.push_back({static_cast<net::NodeId>(rng.next_below(100)), 0});
    for (std::size_t i = 1; i < members; ++i) {
      tree.entries.push_back(
          {static_cast<net::NodeId>(rng.next_below(100)),
           static_cast<std::uint16_t>(rng.pick_index(i))});
    }
    h.multicast = tree;
  }

  // Exact round trip.
  const auto bytes = session::encode(h);
  const auto back = session::decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);

  // Random mutations: decode must never crash; whatever it accepts must be
  // internally consistent enough to re-encode.
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = bytes;
    const std::size_t flips = 1 + rng.pick_index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.pick_index(mutated.size());
      mutated[pos] = std::byte{static_cast<unsigned char>(rng.next_below(256))};
    }
    const auto result = session::decode(mutated);
    if (result.has_value()) {
      const auto re = session::encode(*result);
      EXPECT_EQ(session::decode(re).has_value(), true);
    }
  }

  // Truncations at every length: never crash, never accept a prefix
  // shorter than the fixed header.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto result =
        session::decode({bytes.data(), len});
    if (len < session::kFixedHeaderBytes) {
      EXPECT_FALSE(result.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace lsl
