// Mid-transfer adaptive rerouting: the RouteAdvisor's decision rule
// (hysteresis, dwell, blacklist) and the session layer's planned handover
// (drain to the committed offset, resume on the new path) under injected
// brownouts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "exp/scenario.hpp"
#include "sched/route_advisor.hpp"
#include "sched/scheduler.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;
using sched::RouteAdvice;
using sched::RouteAdvisor;
using sched::RouteAdvisorConfig;
using sched::SessionView;

/// 4-node matrix: 0 = src, 3 = dst, depots 1 and 2. Direct path is slow;
/// via-1 and via-2 costs are the knobs each test turns.
sched::CostMatrix quad(double via1_cost, double via2_cost) {
  sched::CostMatrix m(4);
  const auto duplex = [&m](std::size_t i, std::size_t j, double c) {
    m.set_cost(i, j, c);
    m.set_cost(j, i, c);
  };
  duplex(0, 3, 0.5);  // direct: 2 Mbit/s
  duplex(0, 1, via1_cost);
  duplex(1, 3, via1_cost);
  duplex(0, 2, via2_cost);
  duplex(2, 3, via2_cost);
  duplex(1, 2, 0.5);
  return m;
}

RouteAdvisorConfig exact_config() {
  RouteAdvisorConfig config;
  config.hysteresis = 0.15;
  config.min_dwell = 10_s;
  config.switch_penalty = 1_s;
  return config;
}

/// 1000 Mbit outstanding: big enough that the switch penalty is noise.
constexpr std::uint64_t kBigRemaining = 125'000'000;

SessionView view_via(std::vector<net::NodeId> via,
                     std::uint64_t remaining = kBigRemaining) {
  SessionView view;
  view.src = 0;
  view.dst = 3;
  view.current_via = std::move(via);
  view.remaining_bytes = remaining;
  return view;
}

TEST(RouteAdvisorTest, PredictedRemainingSeconds) {
  // cost 0.1 s/Mbit over 1000 Mbit = 100 s.
  EXPECT_NEAR(sched::predicted_remaining_seconds(0.1, kBigRemaining), 100.0,
              1e-9);
  EXPECT_TRUE(std::isinf(
      sched::predicted_remaining_seconds(sched::kInfiniteCost, 1)));
}

TEST(RouteAdvisorTest, KeepsCurrentWhenBestPathUnchanged) {
  sched::Scheduler scheduler(quad(0.1, 0.2), {.epsilon = 0.0});
  RouteAdvisor advisor(exact_config());
  const RouteAdvice advice =
      advisor.evaluate(scheduler, view_via({1}), 100_s, 0_s);
  EXPECT_EQ(advice.action, RouteAdvice::Action::kKeep);
}

TEST(RouteAdvisorTest, HysteresisHoldsSmallImprovements) {
  // Via-1 (current: via-2 at 0.12) predicts 100 s + 1 s penalty vs 120 s:
  // a 15.8% win, but 101 is not under 0.85 * 120 = 102 ... it is. Use a
  // tighter pair: 0.11 vs 0.12 -> 111 vs 120, well inside the margin.
  sched::Scheduler scheduler(quad(0.11, 0.12), {.epsilon = 0.0});
  RouteAdvisor advisor(exact_config());
  const RouteAdvice advice =
      advisor.evaluate(scheduler, view_via({2}), 100_s, 0_s);
  EXPECT_EQ(advice.action, RouteAdvice::Action::kHoldHysteresis);
  // The incumbent stands on every subsequent tick too -- no flapping.
  for (int tick = 0; tick < 5; ++tick) {
    EXPECT_NE(advisor
                  .evaluate(scheduler, view_via({2}),
                            SimTime::seconds(100 + tick), 0_s)
                  .action,
              RouteAdvice::Action::kReroute);
  }
}

TEST(RouteAdvisorTest, DwellHoldsEarlySwitches) {
  // Via-1 at 0.05 vs current via-2 at 0.12: 51 s vs 120 s, far past the
  // margin; only the dwell clock stands in the way.
  sched::Scheduler scheduler(quad(0.05, 0.12), {.epsilon = 0.0});
  RouteAdvisor advisor(exact_config());
  const RouteAdvice held =
      advisor.evaluate(scheduler, view_via({2}), 9_s, 0_s);
  EXPECT_EQ(held.action, RouteAdvice::Action::kHoldDwell);
  const RouteAdvice moved =
      advisor.evaluate(scheduler, view_via({2}), 10_s, 0_s);
  EXPECT_EQ(moved.action, RouteAdvice::Action::kReroute);
  EXPECT_EQ(moved.new_via, std::vector<net::NodeId>{1});
  EXPECT_LT(moved.candidate_remaining_s, moved.current_remaining_s);
}

TEST(RouteAdvisorTest, SwitchPenaltyProtectsNearlyDoneTransfers) {
  // Same strongly-better path, but only 8 Mbit outstanding: 0.4 s left on
  // the candidate plus the 1 s splice beats nothing.
  sched::Scheduler scheduler(quad(0.05, 0.12), {.epsilon = 0.0});
  RouteAdvisor advisor(exact_config());
  const RouteAdvice advice = advisor.evaluate(
      scheduler, view_via({2}, /*remaining=*/1'000'000), 100_s, 0_s);
  EXPECT_EQ(advice.action, RouteAdvice::Action::kHoldHysteresis);
}

TEST(RouteAdvisorTest, BlacklistedDepotNeverATarget) {
  // Via-1 is by far the best path, but depot 1 is blacklisted: the advisor
  // must route around it (via-2) or keep the incumbent -- never propose 1.
  sched::Scheduler scheduler(quad(0.05, 0.12), {.epsilon = 0.0});
  RouteAdvisor advisor(exact_config());
  SessionView view = view_via({2});
  view.blacklist = {1};
  const RouteAdvice advice = advisor.evaluate(scheduler, view, 100_s, 0_s);
  EXPECT_NE(advice.action, RouteAdvice::Action::kReroute);
  for (const net::NodeId hop : advice.new_via) {
    EXPECT_NE(hop, 1u);
  }
  // With the blacklist lifted the same evaluation switches.
  view.blacklist.clear();
  EXPECT_EQ(advisor.evaluate(scheduler, view, 100_s, 0_s).action,
            RouteAdvice::Action::kReroute);
}

TEST(RouteAdvisorTest, OnScheduleAppliesAndRestartsDwell) {
  sched::Scheduler scheduler(quad(0.05, 0.12), {.epsilon = 0.0});
  RouteAdvisor advisor(exact_config());
  std::vector<net::NodeId> via = {2};
  int applied = 0;
  advisor.watch(
      0_s, [&via] { return view_via(via); },
      [&via, &applied](const RouteAdvice& advice) {
        via = advice.new_via;
        ++applied;
        return true;
      });
  // Inside the dwell window nothing moves; at 10 s the handover lands.
  EXPECT_EQ(advisor.on_schedule(scheduler, 5_s), 0u);
  EXPECT_EQ(advisor.on_schedule(scheduler, 10_s), 1u);
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(via, std::vector<net::NodeId>{1});
  // The session now sits on the best path; later ticks keep it there.
  EXPECT_EQ(advisor.on_schedule(scheduler, 30_s), 0u);
  EXPECT_EQ(advisor.reroutes_emitted(), 1u);
  // A fresh better path within the restarted dwell window must wait.
  scheduler.set_cost(0, 2, 0.01);
  scheduler.set_cost(2, 0, 0.01);
  scheduler.set_cost(2, 3, 0.01);
  scheduler.set_cost(3, 2, 0.01);
  EXPECT_EQ(advisor.on_schedule(scheduler, 15_s), 0u);
  EXPECT_EQ(advisor.on_schedule(scheduler, 20_s), 1u);
  EXPECT_EQ(via, std::vector<net::NodeId>{2});
}

TEST(RouteAdvisorTest, RejectedApplyKeepsDwellClock) {
  sched::Scheduler scheduler(quad(0.05, 0.12), {.epsilon = 0.0});
  RouteAdvisor advisor(exact_config());
  int offered = 0;
  advisor.watch(
      0_s, [] { return view_via({2}); },
      [&offered](const RouteAdvice&) {
        ++offered;
        return false;  // session cannot take the handover right now
      });
  EXPECT_EQ(advisor.on_schedule(scheduler, 10_s), 0u);
  EXPECT_EQ(advisor.reroutes_emitted(), 0u);
  // The dwell clock was not restarted, so the very next tick retries.
  EXPECT_EQ(advisor.on_schedule(scheduler, 11_s), 0u);
  EXPECT_EQ(offered, 2);
}

// ---- session-layer handover (packet level) --------------------------------

/// src -- d1 -- sink and src -- d2 -- sink relay paths plus a slow pinned
/// direct link, as in scenarios/forecast_drift.lsl.
struct QuadNet {
  exp::SimHarness harness{/*seed=*/11};
  net::NodeId src, d1, d2, sink;

  QuadNet() {
    src = harness.add_host("src", "site-a");
    d1 = harness.add_host("d1", "core-a");
    d2 = harness.add_host("d2", "core-b");
    sink = harness.add_host("sink", "site-b");
    net::LinkConfig fast;
    fast.rate = Bandwidth::mbps(100);
    fast.propagation_delay = 10_ms;
    fast.queue_capacity_bytes = mib(4);
    net::LinkConfig slow = fast;
    slow.rate = Bandwidth::mbps(20);
    slow.propagation_delay = 40_ms;
    harness.add_link(src, d1, fast);
    harness.add_link(d1, sink, fast);
    harness.add_link(src, d2, fast);
    harness.add_link(d2, sink, fast);
    harness.add_link(src, sink, slow);
    session::DepotConfig depot;
    depot.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
    depot.user_buffer_bytes = mib(2);
    harness.deploy(depot);
    auto& topo = harness.topology();
    topo.node(src).set_route(sink, topo.link_between(src, sink));
    topo.node(sink).set_route(src, topo.link_between(sink, src));
  }
};

TEST(PlannedHandoverTest, ResumesFromCommittedOffsetUnderBrownout) {
  QuadNet net;
  constexpr std::uint64_t kPayload = 32 * kMiB;
  session::TransferSpec spec;
  spec.dst = net.sink;
  spec.via = {net.d1};
  spec.payload_bytes = kPayload;
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto handle = net.harness.launch_reliable(net.src, spec);
  const auto rt = net.harness.reliable(handle);

  // Mid-transfer the d1 path browns out (loss slows it; the transfer still
  // progresses) and the control plane orders a handover to d2.
  auto& topo = net.harness.topology();
  net.harness.simulator().schedule_at(1_s, [&] {
    topo.link_between(net.d1, net.sink)->set_loss_rate(0.05);
    topo.link_between(net.sink, net.d1)->set_loss_rate(0.05);
  });
  bool accepted = false;
  net.harness.simulator().schedule_at(1500_ms, [&] {
    accepted = rt->reroute_to({net.d2});
  });

  const auto outcome = net.harness.wait(handle, 600_s);
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.bytes, kPayload);
  EXPECT_EQ(outcome.reroutes, 1);
  EXPECT_EQ(outcome.retries, 0);  // planned, not failure recovery
  EXPECT_FALSE(outcome.recovered);
  EXPECT_EQ(rt->handovers(), 1u);
  EXPECT_EQ(rt->current_via(), std::vector<net::NodeId>{net.d2});
  EXPECT_TRUE(rt->blacklist().empty());
  // The drain probe pinned a real resume point: the splice neither started
  // over from byte 0 nor pretended the file was done.
  EXPECT_GT(rt->committed_offset(), 0u);
  EXPECT_LT(rt->committed_offset(), kPayload);
}

TEST(PlannedHandoverTest, RefusesBlacklistedAndNoopVias) {
  QuadNet net;
  session::TransferSpec spec;
  spec.dst = net.sink;
  spec.via = {net.d1};
  spec.payload_bytes = 8 * kMiB;
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  const auto handle = net.harness.launch_reliable(net.src, spec);
  const auto rt = net.harness.reliable(handle);

  bool same_via = true;
  bool after_done = true;
  net.harness.simulator().schedule_at(200_ms, [&] {
    same_via = rt->reroute_to({net.d1});  // unchanged path: refuse
  });
  const auto outcome = net.harness.wait(handle, 600_s);
  after_done = rt->reroute_to({net.d2});  // transfer finished: refuse

  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(same_via);
  EXPECT_FALSE(after_done);
  EXPECT_EQ(rt->handovers(), 0u);
}

// ---- scenario level --------------------------------------------------------

constexpr const char* kDriftBase = R"(
host src      site-a
host depot.a  core-a
host depot.b  core-b
host sink     site-b
link src     depot.a rate=100 delay=10 queue=4096 loss=1e-5
link depot.a sink    rate=100 delay=10 queue=4096 loss=1e-5
link src     depot.b rate=80  delay=12 queue=4096 loss=1e-5
link depot.b sink    rate=80  delay=12 queue=4096 loss=1e-5
link src     sink    rate=20  delay=40 queue=4096 loss=1e-5
depot buffers=4096 user=8192
pin src sink
recovery retries=4 stall=10
reroute interval=1 hysteresis=0.2 dwell=3 penalty=0.5 sigma=0.02
transfer src sink size=48 buffers=4096 via=depot.a
)";

TEST(RerouteScenarioTest, BrownoutDriftTriggersHandover) {
  const std::string text =
      std::string(kDriftBase) +
      "fault brownout depot.a sink at=2 for=30 loss=0 factor=0.05\n";
  const auto parsed = exp::parse_scenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const auto outcomes = exp::run_scenario(*parsed.scenario, /*seed=*/7);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].outcome.completed);
  EXPECT_EQ(outcomes[0].outcome.bytes, 48 * kMiB);
  EXPECT_GE(outcomes[0].outcome.reroutes, 1);
}

TEST(RerouteScenarioTest, SteadyForecastNeverReroutes) {
  // Control: identical topology and measurement noise, no fault. The
  // hysteresis margin must absorb the noise -- zero reroutes.
  const auto parsed = exp::parse_scenario(std::string(kDriftBase));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    const auto outcomes = exp::run_scenario(*parsed.scenario, seed);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].outcome.completed);
    EXPECT_EQ(outcomes[0].outcome.reroutes, 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lsl
