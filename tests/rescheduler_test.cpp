#include <gtest/gtest.h>

#include "nws/rescheduler.hpp"
#include "sim/simulator.hpp"

namespace lsl::nws {
namespace {

using namespace lsl::time_literals;

const std::vector<std::string> kSites{"a.edu", "b.edu", "c.edu"};

TEST(ReschedulerTest, RebuildsAtEveryInterval) {
  sim::Simulator sim;
  std::size_t callbacks = 0;
  Rescheduler rescheduler(
      sim, PerformanceMonitor(kSites, NoiseModel{}, 1),
      [](std::size_t, std::size_t) { return Bandwidth::mbps(50); },
      SimTime::seconds(300), {.epsilon = 0.1},
      [&](const sched::Scheduler&) { ++callbacks; });
  rescheduler.start();
  sim.run(SimTime::seconds(1501));
  // t=0, 300, 600, 900, 1200, 1500.
  EXPECT_EQ(callbacks, 6u);
  EXPECT_EQ(rescheduler.rebuilds(), 6u);
  ASSERT_NE(rescheduler.current(), nullptr);
  EXPECT_EQ(rescheduler.current()->matrix().size(), kSites.size());
}

TEST(ReschedulerTest, StopHaltsTheLoop) {
  sim::Simulator sim;
  std::size_t callbacks = 0;
  Rescheduler rescheduler(
      sim, PerformanceMonitor(kSites, NoiseModel{}, 2),
      [](std::size_t, std::size_t) { return Bandwidth::mbps(50); },
      SimTime::seconds(300), {}, [&](const sched::Scheduler&) {
        ++callbacks;
      });
  rescheduler.start();
  sim.run(SimTime::seconds(301));
  rescheduler.stop();
  sim.run(SimTime::seconds(5000));
  EXPECT_EQ(callbacks, 2u);
}

TEST(ReschedulerTest, AdaptsToChangedNetworkConditions) {
  // The a<->c pair starts fast and degrades at t=600s; the rescheduler's
  // decisions must flip from direct to relayed once enough fresh epochs
  // outweigh the history.
  sim::Simulator sim;
  bool degraded = false;
  sim.schedule_at(SimTime::seconds(600), [&] { degraded = true; });

  std::vector<bool> decisions;  // uses_depots per rebuild for a->c
  Rescheduler rescheduler(
      sim, PerformanceMonitor(kSites, NoiseModel{.lognormal_sigma = 0.02},
                              3),
      [&](std::size_t i, std::size_t j) {
        const bool ac = (i == 0 && j == 2) || (i == 2 && j == 0);
        if (ac) {
          return Bandwidth::mbps(degraded ? 4.0 : 60.0);
        }
        return Bandwidth::mbps(60.0);
      },
      SimTime::seconds(300), {.epsilon = 0.1},
      [&](const sched::Scheduler& scheduler) {
        decisions.push_back(scheduler.route(0, 2).uses_depots());
      });
  rescheduler.start();
  sim.run(SimTime::seconds(20'000));
  ASSERT_GE(decisions.size(), 10u);
  EXPECT_FALSE(decisions.front());  // initially direct
  EXPECT_TRUE(decisions.back());    // eventually routes around the damage
}

}  // namespace
}  // namespace lsl::nws
