// RouteService: sharded, epoch-versioned, lock-free route lookups.
//
// Covers the single-shard parity contract (the service is a pure
// re-encoding of one Scheduler), sharded route validity, epoch/publish
// semantics, rescheduler attachment, batch consistency, the prom export
// of the route_service.* instruments, and a TSan-visible reader/writer
// stress: concurrent batched lookups against live snapshot publication,
// with every answered batch validated against a published epoch.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "nws/monitor.hpp"
#include "nws/rescheduler.hpp"
#include "sched/route_service.hpp"
#include "sim/simulator.hpp"
#include "testbed/grid.hpp"
#include "util/rng.hpp"

namespace lsl::sched {
namespace {

/// A realistic mid-size pool matrix (PlanetLab-like, ~60 hosts).
CostMatrix pool_matrix(std::size_t pool, std::uint64_t seed) {
  const auto grid = testbed::SyntheticGrid::planetlab(
      testbed::scaled_planetlab_config(pool), seed);
  nws::PerformanceMonitor monitor(grid.sites(), nws::NoiseModel{}, seed);
  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    monitor.observe_epoch(grid.truth());
  }
  return monitor.build_matrix();
}

TEST(ShardLayoutTest, PartitionsContiguouslyAndDeterministically) {
  const CostMatrix matrix = pool_matrix(40, 11);
  const ShardLayout layout = ShardLayout::build(matrix, 4);
  EXPECT_EQ(layout.shard_count, 4u);
  EXPECT_EQ(layout.members.size(), matrix.size());
  std::size_t total = 0;
  for (std::size_t s = 0; s < layout.shard_count; ++s) {
    total += layout.shard_size(s);
    EXPECT_GE(layout.shard_size(s), 1u);
    // The gateway is a member of its own shard.
    EXPECT_EQ(layout.shard_of[layout.gateway[s]], s);
  }
  EXPECT_EQ(total, matrix.size());
  for (std::size_t h = 0; h < matrix.size(); ++h) {
    const std::size_t s = layout.shard_of[h];
    EXPECT_EQ(layout.shard_members(s)[layout.local_index[h]], h);
  }
  // Pure function of (matrix, count).
  const ShardLayout again = ShardLayout::build(matrix, 4);
  EXPECT_EQ(again.gateway, layout.gateway);
  EXPECT_EQ(again.members, layout.members);

  // More shards than hosts clamps.
  EXPECT_EQ(ShardLayout::build(matrix, 1000).shard_count, matrix.size());
}

TEST(RouteServiceTest, SingleShardMatchesSchedulerExactly) {
  CostMatrix matrix = pool_matrix(50, 21);
  SchedulerOptions options;
  options.epsilon = 0.25;
  const Scheduler scheduler(matrix, options);

  RouteServiceOptions service_options;
  service_options.shards = 1;
  service_options.scheduler = options;
  const RouteService service(std::move(matrix), service_options);

  const std::size_t n = service.matrix().size();
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      const Scheduler::Decision decision = scheduler.route(src, dst);
      const ResolvedRoute resolved = service.resolve(src, dst);
      ASSERT_EQ(resolved.path, decision.path) << src << "->" << dst;
      const RouteAnswer answer = service.lookup(
          {static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(dst)});
      if (decision.path.empty()) {
        EXPECT_EQ(answer.next_hop, kNoRoute);
      } else {
        EXPECT_DOUBLE_EQ(answer.cost, decision.scheduled_cost);
        EXPECT_DOUBLE_EQ(resolved.cost, decision.scheduled_cost);
        EXPECT_EQ(resolved.uses_depots(), decision.uses_depots());
        if (src != dst) {
          EXPECT_EQ(answer.next_hop, decision.path[1]);
          EXPECT_EQ(answer.relayed != 0, decision.uses_depots());
        }
      }
    }
  }
}

TEST(RouteServiceTest, ShardedRoutesAreValidRelayChains) {
  CostMatrix matrix = pool_matrix(60, 31);
  const CostMatrix reference = matrix;  // service consumes the original
  RouteServiceOptions service_options;
  service_options.shards = 4;
  service_options.scheduler.epsilon = 0.25;
  const RouteService service(std::move(matrix), service_options);
  const ShardLayout& layout = service.layout();

  const std::size_t n = reference.size();
  std::size_t cross_shard = 0;
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (src == dst) {
        continue;
      }
      const ResolvedRoute route = service.resolve(src, dst);
      const RouteAnswer answer = service.lookup(
          {static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(dst)});
      if (route.path.empty()) {
        EXPECT_EQ(answer.next_hop, kNoRoute);
        continue;
      }
      ASSERT_GE(route.path.size(), 2u);
      EXPECT_EQ(route.path.front(), src);
      EXPECT_EQ(route.path.back(), dst);
      EXPECT_DOUBLE_EQ(answer.cost, route.cost);
      EXPECT_EQ(answer.next_hop, route.path[1]);
      EXPECT_EQ(answer.relayed != 0, route.path.size() > 2);
      // Every hop is a real finite edge, the path never repeats a node,
      // and the reported cost is exactly the path's bottleneck edge.
      double bottleneck = 0.0;
      for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
        const double edge = reference.cost(route.path[i], route.path[i + 1]);
        ASSERT_NE(edge, kInfiniteCost)
            << src << "->" << dst << " hop " << route.path[i];
        bottleneck = std::max(bottleneck, edge);
      }
      std::vector<std::size_t> sorted = route.path;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end());
      EXPECT_DOUBLE_EQ(route.cost, bottleneck);
      // Inter-shard paths relay through both gateways.
      const std::size_t s = layout.shard_of[src];
      const std::size_t d = layout.shard_of[dst];
      if (s != d) {
        ++cross_shard;
        const std::uint32_t gw_s = layout.gateway[s];
        const std::uint32_t gw_d = layout.gateway[d];
        EXPECT_NE(std::find(route.path.begin(), route.path.end(), gw_s),
                  route.path.end());
        EXPECT_NE(std::find(route.path.begin(), route.path.end(), gw_d),
                  route.path.end());
      }
    }
  }
  EXPECT_GT(cross_shard, 0u);
}

TEST(RouteServiceTest, PublishesOnChangeAndSkipsNoChangeTicks) {
  CostMatrix matrix = pool_matrix(40, 41);
  const CostMatrix frozen = matrix;
  RouteServiceOptions service_options;
  service_options.shards = 4;
  RouteService service(std::move(matrix), service_options);
  EXPECT_EQ(service.epoch(), 1u);
  const auto snap1 = service.snapshot();

  // Identical matrix: nothing changed, nothing published.
  EXPECT_EQ(service.apply_matrix(frozen), 0u);
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.snapshot().get(), snap1.get());

  // One intra-shard edge halves: a new epoch serves the new cost, and the
  // old snapshot still serves the old one (immutability).
  const ShardLayout& layout = service.layout();
  std::uint32_t a = 0, b = 0;
  for (std::uint32_t j = 1; j < frozen.size(); ++j) {
    if (layout.shard_of[j] == layout.shard_of[0] &&
        frozen.cost(0, j) != kInfiniteCost) {
      b = j;
      break;
    }
  }
  ASSERT_NE(b, 0u);
  CostMatrix drifted = frozen;
  drifted.set_cost(a, b, frozen.cost(a, b) * 0.5);
  EXPECT_EQ(service.apply_matrix(drifted), 1u);
  EXPECT_EQ(service.epoch(), 2u);
  const auto snap2 = service.snapshot();
  EXPECT_EQ(snap2->epoch(), 2u);
  EXPECT_NE(snap1->lookup({a, b}).cost, 0.0);
  EXPECT_LE(snap2->lookup({a, b}).cost, snap1->lookup({a, b}).cost);
}

TEST(RouteServiceTest, AttachFollowsReschedulerTicks) {
  using namespace lsl::time_literals;
  const std::vector<std::string> sites{"a.edu", "b.edu", "c.edu", "d.edu"};
  sim::Simulator sim;
  nws::Rescheduler rescheduler(
      sim, nws::PerformanceMonitor(sites, nws::NoiseModel{}, 5),
      [](std::size_t, std::size_t) { return Bandwidth::mbps(50); },
      SimTime::seconds(300), {.epsilon = 0.1}, [](const Scheduler&) {});

  RouteServiceOptions service_options;
  service_options.shards = 2;
  RouteService service(CostMatrix(sites.size()), service_options);
  EXPECT_EQ(service.epoch(), 1u);
  const std::uint64_t token = service.attach(rescheduler);
  rescheduler.start();
  sim.run(SimTime::seconds(1501));
  // Measurement noise moves some forecast every tick, so the service
  // republished; its matrix now mirrors the rescheduler's.
  EXPECT_GT(service.epoch(), 1u);
  ASSERT_NE(rescheduler.current(), nullptr);
  const CostMatrix& fresh = rescheduler.current()->matrix();
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    for (std::size_t j = 0; j < fresh.size(); ++j) {
      EXPECT_EQ(service.matrix().cost(i, j), fresh.cost(i, j));
    }
  }
  const std::uint64_t epoch = service.epoch();
  rescheduler.unsubscribe(token);
  sim.run(SimTime::seconds(3000));
  EXPECT_EQ(service.epoch(), epoch);  // detached: no further publishes
}

TEST(RouteServiceTest, BatchLookupMatchesSingleLookups) {
  CostMatrix matrix = pool_matrix(50, 51);
  RouteServiceOptions service_options;
  service_options.shards = 4;
  const RouteService service(std::move(matrix), service_options);
  const std::size_t n = service.matrix().size();
  Rng rng(7);
  std::vector<RouteQuery> queries(1024);
  for (auto& q : queries) {
    q.src = static_cast<std::uint32_t>(rng.next_u64() % n);
    q.dst = static_cast<std::uint32_t>(rng.next_u64() % n);
  }
  std::vector<RouteAnswer> answers(queries.size());
  service.lookup_batch(queries, answers);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RouteAnswer single = service.lookup(queries[i]);
    EXPECT_DOUBLE_EQ(answers[i].cost, single.cost);
    EXPECT_EQ(answers[i].next_hop, single.next_hop);
    EXPECT_EQ(answers[i].relayed, single.relayed);
  }
}

TEST(RouteServiceTest, ExportsPromMetrics) {
  obs::Registry registry;
  obs::ScopedRegistry scope(registry);
  CostMatrix matrix = pool_matrix(40, 61);
  const CostMatrix frozen = matrix;
  RouteServiceOptions service_options;
  service_options.shards = 2;
  RouteService service(std::move(matrix), service_options);
  std::vector<RouteQuery> queries(64, RouteQuery{1, 2});
  std::vector<RouteAnswer> answers(queries.size());
  service.lookup_batch(queries, answers);
  EXPECT_EQ(service.apply_matrix(frozen), 0u);  // age tick

  const std::string prom = registry.to_prom();
  EXPECT_NE(prom.find("sched_route_service_snapshot_swaps 1"),
            std::string::npos);
  EXPECT_NE(prom.find("sched_route_service_lookups 64"), std::string::npos);
  EXPECT_NE(prom.find("sched_route_service_epoch 1"), std::string::npos);
  EXPECT_NE(prom.find("sched_route_service_epoch_age_ticks 1"),
            std::string::npos);
  EXPECT_NE(prom.find("sched_route_service_batch_size_count 1"),
            std::string::npos);
}

// The ISSUE 9 concurrency contract, TSan-visible: reader threads answer
// batched lookups while a writer continuously diff-applies drift and
// publishes new epochs. No lock is taken on the read path; a batch whose
// surrounding snapshot observations agree on the epoch must match that
// published snapshot answer for answer (no torn state), and every epoch a
// reader ever saw must be one the writer actually published.
TEST(RouteServiceTest, ConcurrentReadersSeeOnlyPublishedEpochs) {
  CostMatrix matrix = pool_matrix(40, 71);
  RouteServiceOptions service_options;
  service_options.shards = 4;
  RouteService service(std::move(matrix), service_options);
  const std::size_t n = service.matrix().size();

  // Writer-side record of every published snapshot, keyed by epoch.
  std::mutex published_mutex;
  std::map<std::uint64_t, std::shared_ptr<const RouteSnapshot>> published;
  published[service.epoch()] = service.snapshot();

  struct Sample {
    RouteQuery query;
    RouteAnswer answer;
    std::uint64_t epoch;
  };
  constexpr std::size_t kReaders = 8;
  constexpr std::size_t kBatches = 60;
  constexpr std::size_t kBatch = 64;
  std::vector<std::vector<Sample>> samples(kReaders);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    obs::Registry registry;
    obs::ScopedRegistry scope(registry);
    Rng rng(3);
    CostMatrix fresh = service.matrix();
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t k = 0; k < 8; ++k) {
        const std::size_t i = rng.next_u64() % n;
        const std::size_t j = rng.next_u64() % n;
        if (i != j && fresh.cost(i, j) != kInfiniteCost) {
          fresh.set_cost(i, j, fresh.cost(i, j) * rng.lognormal(0.0, 0.2));
        }
      }
      if (service.apply_matrix(fresh) > 0) {
        const std::lock_guard<std::mutex> lock(published_mutex);
        published[service.epoch()] = service.snapshot();
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      obs::Registry registry;
      obs::ScopedRegistry scope(registry);
      Rng rng(100 + r);
      std::vector<RouteQuery> queries(kBatch);
      std::vector<RouteAnswer> answers(kBatch);
      samples[r].reserve(kBatches);
      for (std::size_t b = 0; b < kBatches; ++b) {
        for (auto& q : queries) {
          q.src = static_cast<std::uint32_t>(rng.next_u64() % n);
          q.dst = static_cast<std::uint32_t>(rng.next_u64() % n);
        }
        // Bracket the batch with snapshot observations: when both agree,
        // the whole batch is attributable to that single epoch.
        const auto before = service.snapshot();
        service.lookup_batch(queries, answers);
        const auto after = service.snapshot();
        if (before->epoch() == after->epoch()) {
          for (std::size_t i = 0; i < kBatch; ++i) {
            samples[r].push_back(
                Sample{queries[i], answers[i], before->epoch()});
          }
        }
      }
    });
  }
  for (auto& t : readers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  // Post-hoc validation against the writer's publication record.
  std::size_t validated = 0;
  for (const auto& reader_samples : samples) {
    for (const Sample& sample : reader_samples) {
      const auto it = published.find(sample.epoch);
      ASSERT_NE(it, published.end())
          << "reader saw unpublished epoch " << sample.epoch;
      const RouteAnswer expect = it->second->lookup(sample.query);
      ASSERT_DOUBLE_EQ(sample.answer.cost, expect.cost);
      ASSERT_EQ(sample.answer.next_hop, expect.next_hop);
      ASSERT_EQ(sample.answer.relayed, expect.relayed);
      ++validated;
    }
  }
  EXPECT_GT(validated, 0u);
}

}  // namespace
}  // namespace lsl::sched
