#include <gtest/gtest.h>

#include "exp/scenario.hpp"

namespace lsl::exp {
namespace {

constexpr const char* kValid = R"(
# a minimal triangle
host a site-a
host d core
host b site-b
link a d rate=100 delay=10 queue=4096 loss=1e-4
link d b rate=100 delay=10 queue=4096 loss=1e-4
link a b rate=100 delay=25 queue=4096 loss=1e-4
depot buffers=1024 user=2048 max_sessions=8
pin a b
transfer a b size=2 buffers=1024
transfer a b size=2 buffers=1024 via=d
)";

TEST(ScenarioParserTest, ParsesValidScenario) {
  const auto result = parse_scenario(kValid);
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& s = *result.scenario;
  EXPECT_EQ(s.hosts.size(), 3u);
  EXPECT_EQ(s.links.size(), 3u);
  EXPECT_EQ(s.pins.size(), 1u);
  EXPECT_EQ(s.transfers.size(), 2u);
  EXPECT_EQ(s.hosts[1].site, "core");
  EXPECT_DOUBLE_EQ(s.links[0].config.rate.megabits_per_second(), 100.0);
  EXPECT_EQ(s.links[0].config.propagation_delay, SimTime::milliseconds(10));
  EXPECT_EQ(s.links[0].config.queue_capacity_bytes, 4096u * 1024u);
  EXPECT_DOUBLE_EQ(s.links[0].config.loss_rate, 1e-4);
  EXPECT_EQ(s.depot.tcp.recv_buffer_bytes, 1024u * 1024u);
  EXPECT_EQ(s.depot.user_buffer_bytes, 2048u * 1024u);
  EXPECT_EQ(s.depot.max_sessions, 8u);
  EXPECT_EQ(s.transfers[0].bytes, 2 * kMiB);
  EXPECT_TRUE(s.transfers[0].via.empty());
  EXPECT_EQ(s.transfers[1].via, (std::vector<std::string>{"d"}));
}

TEST(ScenarioParserTest, SiteDefaultsToHostName) {
  const auto result = parse_scenario(
      "host x\nhost y\nlink x y rate=10\ntransfer x y size=1\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.scenario->hosts[0].site, "x");
}

TEST(ScenarioParserTest, CommentsAndBlankLinesIgnored)
{
  const auto result = parse_scenario(
      "# header\n\nhost x # trailing\nhost y\nlink x y rate=10 # fast\n"
      "transfer x y size=1\n");
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST(ScenarioParserTest, PoolDirectiveNeedsNoTopology) {
  const auto result = parse_scenario(
      "pool size=1024 epsilon=0.25 iterations=3 cases=200 sizes=5 "
      "drift=0.1\n");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_TRUE(result.scenario->pool.has_value());
  EXPECT_EQ(result.scenario->pool->size, 1024u);
  EXPECT_DOUBLE_EQ(result.scenario->pool->epsilon, 0.25);
  EXPECT_EQ(result.scenario->pool->iterations, 3u);
  EXPECT_EQ(result.scenario->pool->max_cases, 200u);
  EXPECT_EQ(result.scenario->pool->max_size_exp, 5);
  EXPECT_DOUBLE_EQ(result.scenario->pool->drift_sigma, 0.1);
}

TEST(ScenarioParserTest, PoolDefaultsAndValidation) {
  const auto defaults = parse_scenario("pool\n");
  ASSERT_TRUE(defaults.ok()) << defaults.error;
  EXPECT_EQ(defaults.scenario->pool->size, 142u);
  EXPECT_LT(defaults.scenario->pool->epsilon, 0.0);  // grid-calibrated

  EXPECT_FALSE(parse_scenario("pool size=1\n").ok());
  EXPECT_FALSE(parse_scenario("pool shape=ring\n").ok());
  // Without a pool, the topology requirements still hold.
  EXPECT_FALSE(parse_scenario("host a\nhost b\n").ok());
}

TEST(ScenarioParserTest, ParsesFidelityDirective) {
  const auto flow = parse_scenario(std::string(kValid) + "fidelity flow\n");
  ASSERT_TRUE(flow.ok()) << flow.error;
  ASSERT_TRUE(flow.scenario->fidelity.has_value());
  EXPECT_EQ(*flow.scenario->fidelity, Fidelity::kFlow);

  const auto packet = parse_scenario(std::string(kValid) + "fidelity packet\n");
  ASSERT_TRUE(packet.ok()) << packet.error;
  ASSERT_TRUE(packet.scenario->fidelity.has_value());
  EXPECT_EQ(*packet.scenario->fidelity, Fidelity::kPacket);

  // Unset means packet for scenarios (analytic for pool sweeps).
  const auto unset = parse_scenario(kValid);
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset.scenario->fidelity.has_value());
}

TEST(ScenarioParserTest, RejectsBadFidelity) {
  EXPECT_FALSE(
      parse_scenario(std::string(kValid) + "fidelity hybrid\n").ok());
  EXPECT_FALSE(parse_scenario(std::string(kValid) + "fidelity\n").ok());
  EXPECT_FALSE(
      parse_scenario(std::string(kValid) + "fidelity flow packet\n").ok());
}

TEST(ScenarioParserTest, ParsesCcaDirective) {
  const auto cubic = parse_scenario(std::string(kValid) + "cca cubic\n");
  ASSERT_TRUE(cubic.ok()) << cubic.error;
  ASSERT_TRUE(cubic.scenario->cca.has_value());
  EXPECT_EQ(*cubic.scenario->cca, flow::Cca::kCubic);

  const auto bbr = parse_scenario(std::string(kValid) + "cca bbr\n");
  ASSERT_TRUE(bbr.ok()) << bbr.error;
  EXPECT_EQ(*bbr.scenario->cca, flow::Cca::kBbr);

  // Without a directive the option stays unset (NewReno default applies).
  const auto unset = parse_scenario(kValid);
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset.scenario->cca.has_value());
}

TEST(ScenarioParserTest, RejectsBadCca) {
  EXPECT_FALSE(parse_scenario(std::string(kValid) + "cca tahoe\n").ok());
  EXPECT_FALSE(parse_scenario(std::string(kValid) + "cca\n").ok());
  EXPECT_FALSE(
      parse_scenario(std::string(kValid) + "cca cubic bbr\n").ok());
}

TEST(ScenarioParserTest, ParsesLinkPreset) {
  const auto result = parse_scenario(
      "host a\nhost b\nlink a b preset=wan10g\ntransfer a b size=1\n");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& link = result.scenario->links[0].config;
  EXPECT_DOUBLE_EQ(link.rate.megabits_per_second(), 10000.0);
  EXPECT_EQ(link.propagation_delay, SimTime::milliseconds(80));
  EXPECT_EQ(link.queue_capacity_bytes, 32768u * kKiB);
  EXPECT_DOUBLE_EQ(link.loss_rate, 1e-4);
}

TEST(ScenarioParserTest, LinkPresetAttributesOverrideInOrder) {
  // Later key=value attributes win over the preset's values.
  const auto result = parse_scenario(
      "host a\nhost b\nlink a b preset=wan10g delay=35 loss=5e-5\n"
      "transfer a b size=1\n");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& link = result.scenario->links[0].config;
  EXPECT_DOUBLE_EQ(link.rate.megabits_per_second(), 10000.0);  // preset
  EXPECT_EQ(link.propagation_delay, SimTime::milliseconds(35));
  EXPECT_DOUBLE_EQ(link.loss_rate, 5e-5);
}

TEST(ScenarioParserTest, RejectsUnknownPreset) {
  const auto result = parse_scenario(
      "host a\nhost b\nlink a b preset=oc768\ntransfer a b size=1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("oc768"), std::string::npos);
}

TEST(ScenarioParserTest, RejectsUnknownDirective) {
  const auto result = parse_scenario("host a\nhost b\nfrobnicate a b\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 3"), std::string::npos);
  EXPECT_NE(result.error.find("frobnicate"), std::string::npos);
}

TEST(ScenarioParserTest, RejectsUnknownHostInLink) {
  const auto result = parse_scenario("host a\nhost b\nlink a zz rate=10\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("zz"), std::string::npos);
}

TEST(ScenarioParserTest, RejectsDuplicateHost) {
  const auto result = parse_scenario("host a\nhost a\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("duplicate"), std::string::npos);
}

TEST(ScenarioParserTest, RejectsBadAttribute) {
  const auto result =
      parse_scenario("host a\nhost b\nlink a b rate=fast\n");
  ASSERT_FALSE(result.ok());
}

TEST(ScenarioParserTest, RejectsUnknownLinkAttribute) {
  const auto result =
      parse_scenario("host a\nhost b\nlink a b color=blue\n");
  ASSERT_FALSE(result.ok());
}

TEST(ScenarioParserTest, RejectsTransferWithoutSize) {
  const auto result = parse_scenario(
      "host a\nhost b\nlink a b rate=10\ntransfer a b\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("size"), std::string::npos);
}

TEST(ScenarioParserTest, RejectsUnknownViaHost) {
  const auto result = parse_scenario(
      "host a\nhost b\nlink a b rate=10\ntransfer a b size=1 via=ghost\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("ghost"), std::string::npos);
}

TEST(ScenarioParserTest, RejectsEmptyTopology) {
  EXPECT_FALSE(parse_scenario("").ok());
  EXPECT_FALSE(parse_scenario("host a\nhost b\n").ok());
}

TEST(ScenarioRunnerTest, RunsTransfersInOrder) {
  const auto parsed = parse_scenario(kValid);
  ASSERT_TRUE(parsed.ok());
  const auto outcomes = run_scenario(*parsed.scenario, /*seed=*/3);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& [transfer, outcome] : outcomes) {
    EXPECT_TRUE(outcome.completed) << transfer.src << "->" << transfer.dst;
    EXPECT_EQ(outcome.bytes, 2 * kMiB);
  }
  // The relayed transfer (25 ms direct vs 10+10 legs) should not be slower
  // by much; both completed is the hard requirement here.
  EXPECT_GT(outcomes[1].outcome.goodput.bits_per_second(), 0.0);
}

TEST(ScenarioRunnerTest, FlowFidelityCompletesSameTransfers) {
  const auto parsed = parse_scenario(std::string(kValid) + "fidelity flow\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const auto outcomes = run_scenario(*parsed.scenario, /*seed=*/3);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& [transfer, outcome] : outcomes) {
    EXPECT_TRUE(outcome.completed) << transfer.src << "->" << transfer.dst;
    EXPECT_EQ(outcome.bytes, 2 * kMiB);
    EXPECT_GT(outcome.goodput.bits_per_second(), 0.0);
  }
}

TEST(ScenarioRunnerTest, FlowFidelityIsDeterministic) {
  const auto parsed = parse_scenario(std::string(kValid) + "fidelity flow\n");
  ASSERT_TRUE(parsed.ok());
  const auto a = run_scenario(*parsed.scenario, 7);
  const auto b = run_scenario(*parsed.scenario, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome.elapsed, b[i].outcome.elapsed);
  }
}

// A scenarios/high_bdp.lsl-shaped topology at test size: one lossy
// high-BDP hop past the CUBIC crossover RTT, run once per stack via the
// `cca` directive.
constexpr const char* kHighBdp = R"(
host src west
host dst east
link src dst preset=wan10g rate=2000 queue=8192
depot buffers=8192 user=16384
transfer src dst size=64 buffers=8192
)";

TEST(ScenarioRunnerTest, CcaDirectiveSelectsTheStackEndToEnd) {
  const auto reno = parse_scenario(std::string(kHighBdp) + "cca reno\n");
  const auto cubic = parse_scenario(std::string(kHighBdp) + "cca cubic\n");
  ASSERT_TRUE(reno.ok()) << reno.error;
  ASSERT_TRUE(cubic.ok()) << cubic.error;
  const auto reno_out = run_scenario(*reno.scenario, /*seed=*/7);
  const auto cubic_out = run_scenario(*cubic.scenario, /*seed=*/7);
  ASSERT_EQ(reno_out.size(), 1u);
  ASSERT_EQ(cubic_out.size(), 1u);
  ASSERT_TRUE(reno_out[0].outcome.completed);
  ASSERT_TRUE(cubic_out[0].outcome.completed);
  // 160 ms RTT at loss 1e-4 is past the crossover: CUBIC's response
  // function must finish the same transfer sooner than Reno's.
  EXPECT_LT(cubic_out[0].outcome.elapsed, reno_out[0].outcome.elapsed);
}

TEST(ScenarioRunnerTest, DeterministicForSeed) {
  const auto parsed = parse_scenario(kValid);
  ASSERT_TRUE(parsed.ok());
  const auto a = run_scenario(*parsed.scenario, 7);
  const auto b = run_scenario(*parsed.scenario, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome.elapsed, b[i].outcome.elapsed);
  }
}

}  // namespace
}  // namespace lsl::exp
