// Property tests for the incremental scheduling control plane: tree repair
// against full rebuilds, the exclusion-bitmask overlay against pruned-copy
// builds, and the parallel prebuild against the lazy serial path. The
// contract under test everywhere: the incremental/parallel paths must
// produce exactly the trees and decisions the from-scratch paths produce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sched/cost_matrix.hpp"
#include "sched/minimax.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace lsl::sched {
namespace {

CostMatrix random_matrix(std::size_t n, std::uint64_t seed,
                         bool symmetric = false) {
  Rng rng(seed);
  CostMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = symmetric ? i + 1 : 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      const double c = rng.uniform(1.0, 100.0);
      m.set_cost(i, j, c);
      if (symmetric) {
        m.set_cost(j, i, c);
      }
    }
  }
  m.compact_changes(m.generation());
  return m;
}

void expect_trees_equal(const MmpTree& got, const MmpTree& want,
                        const char* what) {
  ASSERT_EQ(got.start, want.start) << what;
  ASSERT_EQ(got.cost, want.cost) << what;
  ASSERT_EQ(got.parent, want.parent) << what;
  ASSERT_EQ(got.order, want.order) << what;
}

/// Repair `tree` with everything the matrix logged after `since` and check
/// it against a from-scratch build of the current matrix.
void repair_and_check(MmpTree& tree, const CostMatrix& matrix,
                      std::uint64_t since, const MmpOptions& options,
                      const char* what) {
  ASSERT_TRUE(matrix.changes_tracked_since(since)) << what;
  repair_mmp_tree(tree, matrix, matrix.changes_since(since), options);
  const MmpTree full = build_mmp_tree(matrix, tree.start, options);
  expect_trees_equal(tree, full, what);
}

struct DriftCase {
  std::size_t n;
  double epsilon;
  bool symmetric;
  bool node_costs;
};

class RepairDriftTest : public ::testing::TestWithParam<DriftCase> {};

// Randomized sequences of drift / blacklist / un-blacklist batches: after
// every batch, an incrementally repaired tree must exactly equal a fresh
// build (parents, costs, AND insertion order). At epsilon == 0 the
// increase-only batches take the repair path; at epsilon > 0 they force
// the rebuild fallback by design (incumbent histories are not
// reconstructible) -- either way the result must be the rebuild's tree.
TEST_P(RepairDriftTest, RepairMatchesFullRebuildAcrossBatches) {
  const DriftCase param = GetParam();
  const std::size_t n = param.n;
  CostMatrix matrix = random_matrix(n, 0xD41F7 + n, param.symmetric);
  MmpOptions options;
  options.epsilon = param.epsilon;
  std::vector<double> node_costs;
  if (param.node_costs) {
    Rng rng(7);
    node_costs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      node_costs.push_back(rng.uniform(0.5, 20.0));
    }
    options.node_costs = node_costs;
  }
  MmpTree tree = build_mmp_tree(matrix, 0, options);

  Rng rng(0xBEEF ^ n);
  std::vector<std::size_t> blacklisted;
  for (int batch = 0; batch < 8; ++batch) {
    const std::uint64_t since = matrix.generation();
    const int kind = batch % 4;
    if (kind == 0 || kind == 2) {
      // Increase-only drift on random directed edges (kind 2 adds a hit on
      // one of the tree's own parent edges so subtrees really re-settle).
      for (std::size_t k = 0; k < n / 2; ++k) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
        if (j >= i) {
          ++j;
        }
        matrix.set_cost(i, j, matrix.cost(i, j) * rng.uniform(1.01, 1.6));
      }
      if (kind == 2 && tree.order.size() > 2) {
        const auto v = tree.order[tree.order.size() - 1];
        const auto p = static_cast<std::size_t>(tree.parent[v]);
        matrix.set_cost(p, v, matrix.cost(p, v) * 1.5);
      }
    } else if (kind == 1) {
      // Blacklist a couple of non-root nodes.
      for (int k = 0; k < 2; ++k) {
        const auto victim = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(n) - 1));
        matrix.exclude_node(victim);
        blacklisted.push_back(victim);
      }
    } else {
      // Un-blacklist (restore finite costs = decreases: rebuild fallback)
      // and mix in decreasing drift.
      for (const std::size_t victim : blacklisted) {
        for (std::size_t o = 0; o < n; ++o) {
          if (o != victim) {
            matrix.set_cost(victim, o, rng.uniform(1.0, 100.0));
            matrix.set_cost(o, victim, rng.uniform(1.0, 100.0));
          }
        }
      }
      blacklisted.clear();
      for (std::size_t k = 0; k < n / 4; ++k) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
        if (j >= i) {
          ++j;
        }
        if (matrix.cost(i, j) != kInfiniteCost) {
          matrix.set_cost(i, j, matrix.cost(i, j) * rng.uniform(0.5, 0.99));
        }
      }
    }
    repair_and_check(tree, matrix, since, options, "batch");
    matrix.compact_changes(matrix.generation());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RepairDriftTest,
    ::testing::Values(DriftCase{16, 0.10, false, false},
                      DriftCase{16, 0.0, true, false},
                      DriftCase{142, 0.10, false, false},
                      DriftCase{142, 0.25, true, true},
                      DriftCase{142, 0.0, false, false},
                      DriftCase{512, 0.10, false, false}));

TEST(RepairTest, NoChangesIsANoOp) {
  const CostMatrix matrix = random_matrix(32, 5);
  MmpTree tree = build_mmp_tree(matrix, 3, {.epsilon = 0.1});
  const MmpTree before = tree;
  const auto outcome = repair_mmp_tree(tree, matrix, {}, {.epsilon = 0.1});
  EXPECT_TRUE(outcome.repaired);
  EXPECT_EQ(outcome.resettled, 0u);
  expect_trees_equal(tree, before, "no-op repair");
}

/// A 5-node line-up where node 4's incumbent history at epsilon = 0.1 is
/// load-bearing: the build settles 0,1,2,3 in cost order, node 1 offers 4
/// cost 8 (applied), node 2's 7.5 collapses against it (7.5 * 1.1 >= 8),
/// node 3's 7 wins. Final: parent[4] = 3, cost 7.
CostMatrix epsilon_history_matrix() {
  CostMatrix m(5);
  m.set_cost(0, 1, 1.0);
  m.set_cost(0, 2, 2.0);
  m.set_cost(0, 3, 3.0);
  m.set_cost(1, 4, 8.0);
  m.set_cost(2, 4, 7.5);
  m.set_cost(3, 4, 7.0);
  m.compact_changes(m.generation());
  return m;
}

// Raising the overwritten offer 1->4 to 50 rewrites node 4's incumbent
// history: the rebuild applies 50, then 2's 7.5 wins outright (8.25 < 50)
// and 3's 7 collapses against it -- parent 2, cost 7.5. No final-state
// seeding sees this (parent[4] != 1), so at epsilon > 0 an increase must
// force the rebuild fallback rather than keep the stale parent 3 / cost 7.
TEST(RepairTest, EpsilonIncreaseForcesRebuildFallback) {
  CostMatrix matrix = epsilon_history_matrix();
  MmpTree tree = build_mmp_tree(matrix, 0, {.epsilon = 0.1});
  ASSERT_EQ(tree.parent[4], 3);
  ASSERT_EQ(tree.cost[4], 7.0);
  const std::uint64_t since = matrix.generation();
  matrix.set_cost(1, 4, 50.0);
  const auto outcome = repair_mmp_tree(tree, matrix, matrix.changes_since(since),
                                       {.epsilon = 0.1});
  EXPECT_FALSE(outcome.repaired);
  const MmpTree full = build_mmp_tree(matrix, 0, {.epsilon = 0.1});
  EXPECT_EQ(full.parent[4], 2);
  EXPECT_EQ(full.cost[4], 7.5);
  expect_trees_equal(tree, full, "epsilon increase");
}

// Pure decreases stay on the incremental path at epsilon > 0: a
// strengthened offer that actually wins strictly drops a cost and trips
// the monotonicity fallback, so a no-drop repair is replay-exact.
TEST(RepairTest, EpsilonDecreaseOnlyStaysIncremental) {
  CostMatrix matrix = epsilon_history_matrix();
  MmpTree tree = build_mmp_tree(matrix, 0, {.epsilon = 0.1});
  const std::uint64_t since = matrix.generation();
  // 7.3 still collapses against the replayed incumbent 8, so no cost
  // drops and the repair may keep its fast path.
  matrix.set_cost(2, 4, 7.3);
  const auto outcome = repair_mmp_tree(tree, matrix, matrix.changes_since(since),
                                       {.epsilon = 0.1});
  EXPECT_TRUE(outcome.repaired);
  EXPECT_EQ(outcome.resettled, 1u);
  expect_trees_equal(tree, build_mmp_tree(matrix, 0, {.epsilon = 0.1}),
                     "epsilon decrease");
}

// At epsilon = 0 final costs are order-independent, so increases repair
// incrementally: an increase off the chosen paths re-settles nothing, a
// hit on a leaf's parent edge re-settles just that leaf. Guards against
// the epsilon gate silently widening into rebuild-everything.
TEST(RepairTest, ExactIncreaseRepairStaysIncremental) {
  CostMatrix matrix = random_matrix(64, 0xE95);
  MmpTree tree = build_mmp_tree(matrix, 0, {});
  const auto leaf = static_cast<std::size_t>(tree.order.back());
  const auto parent = static_cast<std::size_t>(tree.parent[leaf]);

  std::uint64_t since = matrix.generation();
  // An increase on a non-parent edge into the leaf: ignorable.
  std::size_t other = 1;
  while (other == leaf || other == parent) {
    ++other;
  }
  ASSERT_NE(tree.parent[leaf], static_cast<std::int64_t>(other));
  matrix.set_cost(other, leaf, matrix.cost(other, leaf) * 1.5);
  auto outcome =
      repair_mmp_tree(tree, matrix, matrix.changes_since(since), {});
  EXPECT_TRUE(outcome.repaired);
  EXPECT_EQ(outcome.resettled, 0u);
  expect_trees_equal(tree, build_mmp_tree(matrix, 0, {}), "off-tree increase");

  // An increase on the leaf's own parent edge: exactly one node re-settles.
  since = matrix.generation();
  matrix.set_cost(parent, leaf, matrix.cost(parent, leaf) * 1.5);
  outcome = repair_mmp_tree(tree, matrix, matrix.changes_since(since), {});
  EXPECT_TRUE(outcome.repaired);
  EXPECT_EQ(outcome.resettled, 1u);
  expect_trees_equal(tree, build_mmp_tree(matrix, 0, {}), "tree-edge increase");
}

TEST(RepairTest, EmptyOrderFallsBackToRebuild) {
  const CostMatrix matrix = random_matrix(32, 5);
  MmpTree tree = build_mmp_tree(matrix, 0, {.epsilon = 0.1});
  tree.order.clear();  // e.g. a tree deserialized without its order
  const auto outcome = repair_mmp_tree(tree, matrix, {}, {.epsilon = 0.1});
  EXPECT_FALSE(outcome.repaired);
  expect_trees_equal(tree, build_mmp_tree(matrix, 0, {.epsilon = 0.1}),
                     "rebuild fallback");
}

// The exclusion bitmask must behave exactly like building over a copied
// matrix with the nodes exclude_node()ed -- including the collapse count.
TEST(MaskedBuildTest, MaskEquivalentToPrunedCopy) {
  for (const std::size_t n : {16u, 142u}) {
    for (const double epsilon : {0.0, 0.1, 0.25}) {
      const CostMatrix matrix = random_matrix(n, 0xCAFE + n);
      Rng rng(99 * n);
      std::vector<std::uint8_t> mask(n, 0);
      std::vector<std::size_t> excluded;
      for (int k = 0; k < 3; ++k) {
        const auto v = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(n) - 1));
        if (mask[v] == 0) {
          mask[v] = 1;
          excluded.push_back(v);
        }
      }
      MmpOptions options;
      options.epsilon = epsilon;
      options.excluded = mask;
      const MmpTree masked = build_mmp_tree(matrix, 0, options);

      CostMatrix pruned(matrix);
      for (const std::size_t v : excluded) {
        pruned.exclude_node(v);
      }
      const MmpTree copied =
          build_mmp_tree(pruned, 0, {.epsilon = epsilon});
      expect_trees_equal(masked, copied, "mask vs pruned copy");
      EXPECT_EQ(masked.epsilon_collapses, copied.epsilon_collapses);
    }
  }
}

// route_avoiding must give the same decision as the old implementation:
// copy the matrix, blacklist the failed depots, reroute from scratch.
// Both epsilon regimes matter -- 0 repairs the cached tree under the
// mask, > 0 falls back to a masked from-scratch build.
class RouteAvoidingTest : public ::testing::TestWithParam<double> {};

TEST_P(RouteAvoidingTest, MatchesMatrixCopyBaseline) {
  const double epsilon = GetParam();
  const std::size_t n = 64;
  const CostMatrix matrix = random_matrix(n, 0xF00D);
  const Scheduler scheduler(CostMatrix(matrix), {.epsilon = epsilon});
  Rng rng(31337);
  for (int round = 0; round < 50; ++round) {
    const auto src = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto dst = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    if (dst >= src) {
      ++dst;
    }
    std::vector<std::size_t> excluded;
    for (int k = 0; k < round % 4; ++k) {
      excluded.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    }
    const auto got = scheduler.route_avoiding(src, dst, excluded);

    CostMatrix pruned(matrix);
    for (const std::size_t v : excluded) {
      if (v != src && v != dst && v < n) {
        pruned.exclude_node(v);
      }
    }
    const Scheduler baseline(std::move(pruned), {.epsilon = epsilon});
    const auto want = baseline.route(src, dst);
    EXPECT_EQ(got.path, want.path) << "round " << round;
    EXPECT_EQ(got.scheduled_cost, want.scheduled_cost) << "round " << round;
    EXPECT_EQ(got.direct_cost, want.direct_cost) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, RouteAvoidingTest,
                         ::testing::Values(0.0, 0.1));

// Lazy serial use and an up-front parallel prebuild must serve identical
// trees and decisions for any job count.
TEST(PrebuildTest, PrebuildMatchesLazySerialTrees) {
  const std::size_t n = 96;
  const CostMatrix matrix = random_matrix(n, 0xABBA);
  const Scheduler lazy(CostMatrix(matrix), {.epsilon = 0.1});
  for (const std::size_t jobs : {1u, 4u}) {
    Scheduler pre(CostMatrix(matrix), {.epsilon = 0.1});
    pre.prebuild_trees(jobs);
    for (std::size_t s = 0; s < n; ++s) {
      expect_trees_equal(pre.tree_from(s), lazy.tree_from(s), "prebuild");
    }
    EXPECT_EQ(pre.fraction_scheduled(), lazy.fraction_scheduled());
  }
}

TEST(PrebuildTest, PrebuildSubsetThenMutateThenRefresh) {
  const std::size_t n = 48;
  CostMatrix matrix = random_matrix(n, 0x5EED);
  Scheduler scheduler(CostMatrix(matrix), {.epsilon = 0.1});
  const std::vector<std::size_t> sources = {0, 7, 7, 13, 0};
  scheduler.prebuild_trees(2, sources);
  // Drift + blacklist through the scheduler's mutation API...
  scheduler.set_cost(1, 2, 250.0);
  scheduler.exclude_node(5);
  matrix.set_cost(1, 2, 250.0);
  matrix.exclude_node(5);
  // ...then refresh everything in parallel and compare against a fresh
  // scheduler over the equivalent matrix.
  scheduler.prebuild_trees(3);
  const Scheduler fresh(std::move(matrix), {.epsilon = 0.1});
  for (std::size_t s = 0; s < n; ++s) {
    expect_trees_equal(scheduler.tree_from(s), fresh.tree_from(s),
                       "post-mutation refresh");
  }
}

TEST(ApplyMatrixTest, DiffApplyMatchesFreshScheduler) {
  const std::size_t n = 64;
  const CostMatrix original = random_matrix(n, 0x1DEA);
  CostMatrix drifted(original);
  Rng rng(4242);
  for (std::size_t k = 0; k < 200; ++k) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    if (j >= i) {
      ++j;
    }
    drifted.set_cost(i, j, rng.uniform(1.0, 200.0));
  }

  Scheduler incremental(CostMatrix(original), {.epsilon = 0.1});
  // Warm some cached trees so apply_matrix has real repair work to do.
  for (std::size_t s = 0; s < n; s += 3) {
    (void)incremental.tree_from(s);
  }
  const std::size_t changed = incremental.apply_matrix(drifted);
  EXPECT_GT(changed, 0u);
  EXPECT_LE(changed, 200u);

  const Scheduler fresh(CostMatrix(drifted), {.epsilon = 0.1});
  for (std::size_t s = 0; s < n; ++s) {
    expect_trees_equal(incremental.tree_from(s), fresh.tree_from(s),
                       "apply_matrix");
  }
  // Re-applying the same matrix is a no-op.
  EXPECT_EQ(incremental.apply_matrix(drifted), 0u);
}

TEST(ChangeLogTest, OverflowIsDetectedAndCompactionRecovers) {
  CostMatrix m(8);
  m.compact_changes(m.generation());
  const std::uint64_t since = m.generation();
  Rng rng(1);
  // 8n + 64 = 128 entries fit; push well past that.
  for (int k = 0; k < 500; ++k) {
    m.set_cost(static_cast<std::size_t>(k % 8),
               static_cast<std::size_t>((k + 1) % 8), rng.uniform(1.0, 9.0));
  }
  EXPECT_FALSE(m.changes_tracked_since(since));
  // After compacting to "now", new changes are tracked again.
  m.compact_changes(m.generation());
  const std::uint64_t now = m.generation();
  m.set_cost(0, 1, 123.0);
  ASSERT_TRUE(m.changes_tracked_since(now));
  const auto changes = m.changes_since(now);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].from, 0u);
  EXPECT_EQ(changes[0].to, 1u);
  EXPECT_FALSE(changes[0].decreased);
  EXPECT_FALSE(changes[0].node_excluded);
}

// Compaction must invalidate consumers whose snapshot predates the
// compacted span: they would otherwise pass changes_tracked_since yet
// repair from a silently truncated log.
TEST(ChangeLogTest, CompactionInvalidatesStaleConsumers) {
  CostMatrix m(8);
  m.compact_changes(m.generation());
  const std::uint64_t stale = m.generation();
  m.set_cost(0, 1, 5.0);
  m.set_cost(1, 2, 6.0);
  const std::uint64_t consumed = m.generation();
  m.set_cost(2, 3, 7.0);
  m.compact_changes(consumed);
  EXPECT_FALSE(m.changes_tracked_since(stale));
  ASSERT_TRUE(m.changes_tracked_since(consumed));
  ASSERT_EQ(m.changes_since(consumed).size(), 1u);
  EXPECT_EQ(m.changes_since(consumed)[0].from, 2u);
}

}  // namespace
}  // namespace lsl::sched
