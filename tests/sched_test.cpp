#include <gtest/gtest.h>

#include <cmath>

#include "sched/minimax.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace lsl::sched {
namespace {

CostMatrix random_symmetric(std::size_t n, Rng& rng) {
  CostMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double c = rng.uniform(1.0, 100.0);
      m.set_cost(i, j, c);
      m.set_cost(j, i, c);
    }
  }
  return m;
}

CostMatrix random_directed(std::size_t n, Rng& rng) {
  CostMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        m.set_cost(i, j, rng.uniform(1.0, 100.0));
      }
    }
  }
  return m;
}

TEST(CostMatrixTest, Basics) {
  CostMatrix m(3);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m.cost(1, 1), 0.0);
  EXPECT_EQ(m.cost(0, 1), kInfiniteCost);
  m.set_cost(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(m.cost(0, 1), 5.0);
  EXPECT_EQ(m.cost(1, 0), kInfiniteCost);  // directed
}

TEST(CostMatrixTest, BandwidthConversion) {
  CostMatrix m(2);
  m.set_bandwidth(0, 1, Bandwidth::mbps(50));
  EXPECT_DOUBLE_EQ(m.cost(0, 1), 1.0 / 50.0);
  EXPECT_NEAR(m.bandwidth(0, 1).megabits_per_second(), 50.0, 1e-9);
  m.set_bandwidth_symmetric(0, 1, Bandwidth::mbps(10));
  EXPECT_DOUBLE_EQ(m.cost(1, 0), 0.1);
}

TEST(CostMatrixTest, Labels) {
  CostMatrix m(2);
  m.set_label(0, "ash.ucsb.edu", "ucsb.edu");
  EXPECT_EQ(m.name(0), "ash.ucsb.edu");
  EXPECT_EQ(m.site(0), "ucsb.edu");
}

TEST(MmpTest, PicksRelayWhenDirectEdgeIsWorst) {
  // 0 -> 2 direct costs 10; 0 -> 1 -> 2 has max edge 6.
  CostMatrix m(3);
  m.set_cost(0, 2, 10.0);
  m.set_cost(0, 1, 6.0);
  m.set_cost(1, 2, 5.0);
  const auto tree = build_mmp_tree(m, 0);
  EXPECT_EQ(tree.path_to(2), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(tree.cost[2], 6.0);
}

TEST(MmpTest, PrefersDirectWhenBest) {
  CostMatrix m(3);
  m.set_cost(0, 2, 4.0);
  m.set_cost(0, 1, 6.0);
  m.set_cost(1, 2, 5.0);
  const auto tree = build_mmp_tree(m, 0);
  EXPECT_EQ(tree.path_to(2), (std::vector<std::size_t>{0, 2}));
}

TEST(MmpTest, UnreachableNodesHaveNoPath) {
  CostMatrix m(3);
  m.set_cost(0, 1, 1.0);
  const auto tree = build_mmp_tree(m, 0);
  EXPECT_TRUE(tree.path_to(2).empty());
  EXPECT_EQ(tree.cost[2], kInfiniteCost);
}

TEST(MmpTest, PaperEpsilonExample) {
  // Figure 7/8: direct edge ash->bell costs 5.1; the path through
  // opus.uiuc.edu has max edge 5.0. Strict MMP relays; with eps = 0.1 the
  // 2% difference is "the same" and the tree keeps the direct edge.
  CostMatrix m(3);
  m.set_label(0, "ash.ucsb.edu", "ucsb.edu");
  m.set_label(1, "opus.uiuc.edu", "uiuc.edu");
  m.set_label(2, "bell.uiuc.edu", "uiuc.edu");
  m.set_cost(0, 1, 5.0);
  m.set_cost(0, 2, 5.1);
  m.set_cost(1, 2, 1.0);
  const auto strict = build_mmp_tree(m, 0, {.epsilon = 0.0});
  EXPECT_EQ(strict.path_to(2), (std::vector<std::size_t>{0, 1, 2}));
  const auto damped = build_mmp_tree(m, 0, {.epsilon = 0.1});
  EXPECT_EQ(damped.path_to(2), (std::vector<std::size_t>{0, 2}));
}

TEST(MmpTest, EpsilonStillAllowsBigWins) {
  CostMatrix m(3);
  m.set_cost(0, 2, 10.0);
  m.set_cost(0, 1, 3.0);
  m.set_cost(1, 2, 3.0);
  const auto tree = build_mmp_tree(m, 0, {.epsilon = 0.1});
  EXPECT_EQ(tree.path_to(2), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(MmpTest, PathCostMatchesTreeCost) {
  Rng rng(404);
  const auto m = random_directed(12, rng);
  const auto tree = build_mmp_tree(m, 0);
  for (std::size_t v = 1; v < m.size(); ++v) {
    const auto path = tree.path_to(v);
    ASSERT_FALSE(path.empty());
    EXPECT_DOUBLE_EQ(minimax_path_cost(m, path), tree.cost[v]);
  }
}

class MmpOptimalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MmpOptimalityTest, MatchesOracleOnRandomSymmetricGraphs) {
  Rng rng(GetParam());
  const std::size_t n = 4 + rng.pick_index(12);
  const auto m = random_symmetric(n, rng);
  const auto tree = build_mmp_tree(m, 0);
  for (std::size_t t = 1; t < n; ++t) {
    EXPECT_DOUBLE_EQ(tree.cost[t], minimax_cost_oracle(m, 0, t))
        << "n=" << n << " t=" << t;
  }
}

TEST_P(MmpOptimalityTest, MatchesOracleOnRandomDirectedGraphs) {
  Rng rng(GetParam() ^ 0xD1CE);
  const std::size_t n = 4 + rng.pick_index(10);
  const auto m = random_directed(n, rng);
  const auto tree = build_mmp_tree(m, 0);
  for (std::size_t t = 1; t < n; ++t) {
    EXPECT_DOUBLE_EQ(tree.cost[t], minimax_cost_oracle(m, 0, t));
  }
}

TEST_P(MmpOptimalityTest, EpsilonTreeNeverBeatsOptimalAndStaysClose) {
  // With eps > 0 the tree may be suboptimal, but never by more than the
  // damping factor per relaxation... globally bounded by (1+eps)^n in
  // theory; in practice we assert the weaker invariant cost >= optimal.
  Rng rng(GetParam() ^ 0xBEEF);
  const std::size_t n = 4 + rng.pick_index(10);
  const auto m = random_symmetric(n, rng);
  const auto tree = build_mmp_tree(m, 0, {.epsilon = 0.1});
  for (std::size_t t = 1; t < n; ++t) {
    const double opt = minimax_cost_oracle(m, 0, t);
    const auto path = tree.path_to(t);
    ASSERT_FALSE(path.empty());
    EXPECT_GE(minimax_path_cost(m, path) + 1e-12, opt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmpOptimalityTest,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(MmpTest, NodeCostExtensionAvoidsSlowHosts) {
  // Path 0 -> 1 -> 2 has cheap edges but node 1 is a terrible forwarder.
  CostMatrix m(3);
  m.set_cost(0, 2, 8.0);
  m.set_cost(0, 1, 2.0);
  m.set_cost(1, 2, 2.0);
  const auto plain = build_mmp_tree(m, 0);
  EXPECT_EQ(plain.path_to(2), (std::vector<std::size_t>{0, 1, 2}));

  const std::vector<double> node_costs{0.0, 50.0, 0.0};
  const auto guarded =
      build_mmp_tree(m, 0, {.epsilon = 0.0, .node_costs = node_costs});
  EXPECT_EQ(guarded.path_to(2), (std::vector<std::size_t>{0, 2}));
  EXPECT_DOUBLE_EQ(guarded.cost[2], 8.0);
}

TEST(MmpTest, NodeCostCountedInPathCost) {
  CostMatrix m(3);
  m.set_cost(0, 1, 2.0);
  m.set_cost(1, 2, 2.0);
  const std::vector<double> node_costs{0.0, 7.0, 0.0};
  const std::vector<std::size_t> path{0, 1, 2};
  EXPECT_DOUBLE_EQ(minimax_path_cost(m, path, node_costs), 7.0);
}

TEST(SpTreeTest, AdditiveShortestPathsDifferFromMinimax) {
  // Sum-cost prefers one big hop (10) over 3+3+3+3; minimax prefers the
  // chain. This is exactly why Dijkstra is the wrong objective for
  // pipelined flows.
  CostMatrix m(5);
  m.set_cost(0, 4, 10.0);
  m.set_cost(0, 1, 3.0);
  m.set_cost(1, 2, 3.0);
  m.set_cost(2, 3, 3.0);
  m.set_cost(3, 4, 3.0);
  const auto sp = build_shortest_path_tree(m, 0);
  EXPECT_EQ(sp.path_to(4), (std::vector<std::size_t>{0, 4}));
  EXPECT_DOUBLE_EQ(sp.cost[4], 10.0);
  const auto mmp = build_mmp_tree(m, 0);
  EXPECT_EQ(mmp.path_to(4), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(mmp.cost[4], 3.0);
}

TEST(SchedulerTest, DecisionReportsCostsAndVia) {
  CostMatrix m(4);
  m.set_cost(0, 3, 10.0);
  m.set_cost(0, 1, 2.0);
  m.set_cost(1, 2, 2.0);
  m.set_cost(2, 3, 2.0);
  const Scheduler sched(std::move(m), {.epsilon = 0.0});
  const auto d = sched.route(0, 3);
  EXPECT_TRUE(d.uses_depots());
  EXPECT_EQ(d.via(), (std::vector<net::NodeId>{1, 2}));
  EXPECT_DOUBLE_EQ(d.scheduled_cost, 2.0);
  EXPECT_DOUBLE_EQ(d.direct_cost, 10.0);
}

TEST(SchedulerTest, DirectDecisionHasEmptyVia) {
  CostMatrix m(3);
  m.set_cost(0, 1, 1.0);
  m.set_cost(0, 2, 1.0);
  m.set_cost(1, 2, 1.0);
  const Scheduler sched(std::move(m));
  const auto d = sched.route(0, 2);
  EXPECT_FALSE(d.uses_depots());
  EXPECT_TRUE(d.via().empty());
}

TEST(SchedulerTest, RouteTableNextHopsMatchTreePaths) {
  Rng rng(999);
  const auto m = random_symmetric(10, rng);
  const Scheduler sched(CostMatrix(m), {.epsilon = 0.05});
  for (std::size_t node = 0; node < 10; ++node) {
    const auto table = sched.route_table_for(node);
    for (std::size_t dst = 0; dst < 10; ++dst) {
      if (dst == node) {
        continue;
      }
      const auto path = sched.tree_from(node).path_to(dst);
      ASSERT_GE(path.size(), 2u);
      const auto hop = table.next_hop(static_cast<net::NodeId>(dst));
      ASSERT_TRUE(hop.has_value());
      EXPECT_EQ(*hop, static_cast<net::NodeId>(path[1]));
    }
  }
}

TEST(SchedulerTest, HigherEpsilonSchedulesFewerRelays) {
  Rng rng(31337);
  const auto m = random_symmetric(24, rng);
  const Scheduler strict(CostMatrix(m), {.epsilon = 0.0});
  const Scheduler damped(CostMatrix(m), {.epsilon = 0.25});
  EXPECT_GE(strict.fraction_scheduled(), damped.fraction_scheduled());
}

TEST(SchedulerTest, FractionScheduledBounds) {
  Rng rng(7);
  const auto m = random_symmetric(16, rng);
  const Scheduler sched(CostMatrix(m), {.epsilon = 0.1});
  const double f = sched.fraction_scheduled();
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

}  // namespace
}  // namespace lsl::sched
