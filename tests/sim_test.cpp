#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace lsl::sim {
namespace {

using namespace lsl::time_literals;

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_ms, [&] { order.push_back(3); });
  sim.schedule_at(10_ms, [&] { order.push_back(1); });
  sim.schedule_at(20_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ms);
}

TEST(SimulatorTest, TieBreaksByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5_ms, [&] { order.push_back(1); });
  sim.schedule_at(5_ms, [&] { order.push_back(2); });
  sim.schedule_at(5_ms, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(10_ms, [&] {
    sim.schedule_after(5_ms, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 15_ms);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) {
      sim.schedule_after(1_ms, chain);
    }
  };
  sim.schedule_after(1_ms, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), 100_ms);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10_ms, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10_ms, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(sim.cancel(EventId{9999}));
}

TEST(SimulatorTest, RunWithLimitStopsAtLimit) {
  Simulator sim;
  bool late_ran = false;
  sim.schedule_at(10_ms, [] {});
  sim.schedule_at(100_ms, [&] { late_ran = true; });
  const auto executed = sim.run(50_ms);
  EXPECT_EQ(executed, 1u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.now(), 50_ms);
  // Resuming runs the remaining event.
  sim.run();
  EXPECT_TRUE(late_ran);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] { ++count; });
  sim.schedule_at(2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RequestStopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] {
    ++count;
    sim.request_stop();
  });
  sim.schedule_at(2_ms, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(SimulatorTest, PendingEventsAccountsForCancellation) {
  Simulator sim;
  const EventId a = sim.schedule_at(1_ms, [] {});
  sim.schedule_at(2_ms, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::milliseconds(i + 1), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), 10u);
}

TEST(TimerTest, FiresAtDeadline) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  Timer t(sim, [&] { fired = sim.now(); });
  t.arm(25_ms);
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 25_ms);
  EXPECT_FALSE(t.armed());
}

TEST(TimerTest, RearmReplacesDeadline) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm(10_ms);
  t.arm(20_ms);
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.now(), 20_ms);
}

TEST(TimerTest, CancelStopsFire) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm(10_ms);
  t.cancel();
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, ArmIfIdleKeepsEarlierDeadline) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  Timer t(sim, [&] { fired = sim.now(); });
  t.arm(10_ms);
  t.arm_if_idle(50_ms);  // ignored: already armed
  sim.run();
  EXPECT_EQ(fired, 10_ms);
}

TEST(TimerTest, CanRearmFromCallback) {
  Simulator sim;
  int fires = 0;
  Timer* tp = nullptr;
  Timer t(sim, [&] {
    if (++fires < 3) {
      tp->arm(5_ms);
    }
  });
  tp = &t;
  t.arm(5_ms);
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now(), 15_ms);
}

TEST(TimerTest, DestructionCancelsPendingEvent) {
  Simulator sim;
  int fires = 0;
  {
    Timer t(sim, [&] { ++fires; });
    t.arm(10_ms);
  }
  sim.run();
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace lsl::sim
