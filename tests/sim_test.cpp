#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/action.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace lsl::sim {
namespace {

using namespace lsl::time_literals;

/// The slot index packed into an EventId's low half (see simulator.hpp);
/// lets tests assert that a freed slot really was recycled.
std::uint32_t slot_part(EventId id) {
  return static_cast<std::uint32_t>(id.raw & 0xFFFFFFFFULL);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_ms, [&] { order.push_back(3); });
  sim.schedule_at(10_ms, [&] { order.push_back(1); });
  sim.schedule_at(20_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ms);
}

TEST(SimulatorTest, TieBreaksByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5_ms, [&] { order.push_back(1); });
  sim.schedule_at(5_ms, [&] { order.push_back(2); });
  sim.schedule_at(5_ms, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(10_ms, [&] {
    sim.schedule_after(5_ms, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 15_ms);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) {
      sim.schedule_after(1_ms, chain);
    }
  };
  sim.schedule_after(1_ms, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), 100_ms);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10_ms, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10_ms, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(sim.cancel(EventId{9999}));
}

TEST(SimulatorTest, RunWithLimitStopsAtLimit) {
  Simulator sim;
  bool late_ran = false;
  sim.schedule_at(10_ms, [] {});
  sim.schedule_at(100_ms, [&] { late_ran = true; });
  const auto executed = sim.run(50_ms);
  EXPECT_EQ(executed, 1u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.now(), 50_ms);
  // Resuming runs the remaining event.
  sim.run();
  EXPECT_TRUE(late_ran);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] { ++count; });
  sim.schedule_at(2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RequestStopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] {
    ++count;
    sim.request_stop();
  });
  sim.schedule_at(2_ms, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(SimulatorTest, PendingEventsAccountsForCancellation) {
  Simulator sim;
  const EventId a = sim.schedule_at(1_ms, [] {});
  sim.schedule_at(2_ms, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::milliseconds(i + 1), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), 10u);
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10_ms, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  // The slot's generation advanced when the event fired.
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, StaleIdCannotCancelEventOnRecycledSlot) {
  Simulator sim;
  const EventId stale = sim.schedule_at(10_ms, [] {});
  EXPECT_TRUE(sim.cancel(stale));
  // The next schedule reuses the freed slot under a new generation.
  bool ran = false;
  const EventId fresh = sim.schedule_at(20_ms, [&] { ran = true; });
  EXPECT_EQ(slot_part(stale), slot_part(fresh));
  EXPECT_FALSE(sim.cancel(stale));  // stale generation: a no-op
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StaleIdAfterFireCannotCancelRecycledSlot) {
  Simulator sim;
  const EventId stale = sim.schedule_at(1_ms, [] {});
  sim.run();
  bool ran = false;
  const EventId fresh = sim.schedule_at(2_ms, [&] { ran = true; });
  EXPECT_EQ(slot_part(stale), slot_part(fresh));
  EXPECT_FALSE(sim.cancel(stale));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, EventCanCancelAnotherDuringDispatch) {
  Simulator sim;
  bool victim_ran = false;
  const EventId victim = sim.schedule_at(20_ms, [&] { victim_ran = true; });
  bool cancelled = false;
  sim.schedule_at(10_ms, [&] { cancelled = sim.cancel(victim); });
  sim.run();
  EXPECT_TRUE(cancelled);
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, HighWaterTracksLiveEventsNotTombstones) {
  Simulator sim;
  const EventId a = sim.schedule_at(1_ms, [] {});
  sim.schedule_at(2_ms, [] {});
  sim.cancel(a);
  // The dead heap entry must not count: replacing a cancelled event keeps
  // the live depth at 2.
  sim.schedule_at(3_ms, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  const auto profile = sim.profile();
  EXPECT_EQ(profile.queue_high_water, 2u);
  EXPECT_EQ(profile.events_scheduled, 3u);
  EXPECT_EQ(profile.events_cancelled, 1u);
}

TEST(SimulatorTest, ManyCancelledEventsDrainWithoutDispatch) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule_at(SimTime::milliseconds(i + 1), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(sim.cancel(ids[i]));
  }
  EXPECT_EQ(sim.pending_events(), 500u);
  EXPECT_EQ(sim.run(), 500u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(ActionTest, SmallTriviallyCopyableCaptureStaysInline) {
  struct Small {
    std::uint64_t a, b;
  };
  Small payload{7, 35};
  std::uint64_t out = 0;
  auto fn = [payload, &out] { out = payload.a + payload.b; };
  static_assert(Action::fits_inline<decltype(fn)>());
  Action action(fn);
  Action moved(std::move(action));
  moved();
  EXPECT_EQ(out, 42u);
}

TEST(ActionTest, LargeCaptureFallsBackToHeapAndStillRuns) {
  struct Large {
    unsigned char bytes[Action::kInlineCapacity + 16] = {};
  };
  static_assert(!Action::fits_inline<Large>());
  Large payload;
  payload.bytes[0] = 9;
  int out = 0;
  Action action([payload, &out] { out = payload.bytes[0]; });
  Action moved(std::move(action));
  EXPECT_FALSE(static_cast<bool>(action));
  moved();
  EXPECT_EQ(out, 9);
}

TEST(ActionTest, NonTrivialCaptureDestroysExactlyOnce) {
  auto alive = std::make_shared<int>(1);
  std::weak_ptr<int> watch = alive;
  {
    Action action([keep = std::move(alive)] { (void)*keep; });
    Action moved(std::move(action));
    Action assigned;
    assigned = std::move(moved);
    assigned();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(TimerTest, FiresAtDeadline) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  Timer t(sim, [&] { fired = sim.now(); });
  t.arm(25_ms);
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 25_ms);
  EXPECT_FALSE(t.armed());
}

TEST(TimerTest, RearmReplacesDeadline) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm(10_ms);
  t.arm(20_ms);
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.now(), 20_ms);
}

TEST(TimerTest, CancelStopsFire) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm(10_ms);
  t.cancel();
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(TimerTest, ArmIfIdleKeepsEarlierDeadline) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  Timer t(sim, [&] { fired = sim.now(); });
  t.arm(10_ms);
  t.arm_if_idle(50_ms);  // ignored: already armed
  sim.run();
  EXPECT_EQ(fired, 10_ms);
}

TEST(TimerTest, CanRearmFromCallback) {
  Simulator sim;
  int fires = 0;
  Timer* tp = nullptr;
  Timer t(sim, [&] {
    if (++fires < 3) {
      tp->arm(5_ms);
    }
  });
  tp = &t;
  t.arm(5_ms);
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now(), 15_ms);
}

TEST(TimerTest, DestructionCancelsPendingEvent) {
  Simulator sim;
  int fires = 0;
  {
    Timer t(sim, [&] { ++fires; });
    t.arm(10_ms);
  }
  sim.run();
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace lsl::sim
