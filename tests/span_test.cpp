// Causal span layer: well-formedness of the span stream under failover and
// planned handover, exact sum-to-wall time accounting (--explain), flight
// recorder bounds + post-mortem content, and --jobs determinism of the
// merged stream.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "exp/parallel.hpp"
#include "exp/scenario.hpp"
#include "fault/injector.hpp"
#include "obs/explain.hpp"
#include "obs/span.hpp"
#include "util/units.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;

// ---------------------------------------------------------------------------
// Fixtures

/// UCSB->UIUC style triangle with a depot crash mid-transfer: recovery
/// blacklists the dead depot and fails over to the direct path, producing a
/// multi-attempt failover chain. `crash_duration` zero = permanent crash;
/// `retries` bounds the recovery loop (0 keeps the default).
struct FailoverRun {
  exp::SimHarness::TransferOutcome outcome;
  std::uint64_t session = 0;
};

FailoverRun run_failover(obs::SpanRecorder& spans, std::uint64_t seed,
                         SimTime crash_at, SimTime crash_duration,
                         int retries = 0, bool cut_direct = false,
                         bool blackhole = false) {
  obs::ScopedSpanRecorder scope(&spans);
  exp::SimHarness harness(seed);
  const auto src = harness.add_host("ash.ucsb.edu", "ucsb.edu");
  const auto depot = harness.add_host("depot.denver", "core");
  const auto dst = harness.add_host("bell.uiuc.edu", "uiuc.edu");

  const auto wan = [](double delay_ms, double loss) {
    net::LinkConfig config;
    config.rate = Bandwidth::mbps(155);
    config.propagation_delay = SimTime::from_seconds(delay_ms * 1e-3);
    config.queue_capacity_bytes = mib(8);
    config.loss_rate = loss;
    return config;
  };
  harness.add_link(src, depot, wan(23.0, 1e-5));
  harness.add_link(depot, dst, wan(22.5, 1e-5));
  harness.add_link(src, dst, wan(35.0, 1e-5));

  session::DepotConfig config;
  config.tcp = config.tcp.with_buffers(mib(4));
  config.user_buffer_bytes = mib(8);
  harness.deploy(config);

  auto& topo = harness.topology();
  topo.node(src).set_route(dst, topo.link_between(src, dst));
  topo.node(dst).set_route(src, topo.link_between(dst, src));

  fault::FaultInjector injector(harness.simulator(), topo);
  injector.set_depot_control([&harness](net::NodeId node, bool up) {
    if (up) {
      harness.depot(node).restart();
    } else {
      harness.depot(node).shutdown();
    }
  });
  fault::FaultPlan plan;
  fault::FaultSpec crash;
  if (blackhole) {
    // Silent packet loss on the depot leg: the watchdog has to notice the
    // stall (no connection error arrives), so the failure path runs
    // through kStall -> backoff -> failover.
    crash.kind = fault::FaultKind::kLinkDown;
    crash.link_a = src;
    crash.link_b = depot;
  } else {
    crash.kind = fault::FaultKind::kDepotCrash;
    crash.node = depot;
  }
  crash.at = crash_at;
  crash.duration = crash_duration;
  plan.add(crash);
  if (cut_direct) {
    fault::FaultSpec down;
    down.kind = fault::FaultKind::kLinkDown;
    down.at = crash_at;
    down.link_a = src;
    down.link_b = dst;
    plan.add(down);  // permanent: the failover path dies too
  }
  injector.schedule(plan);

  session::TransferSpec spec;
  spec.dst = dst;
  spec.via.push_back(depot);
  spec.payload_bytes = mib(16);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(4));

  session::RecoveryConfig recovery;
  recovery.stall_timeout = 2_s;
  recovery.max_backoff = 1_s;
  if (retries > 0) {
    recovery.max_retries = retries;
  }

  const auto handle = harness.launch_reliable(src, spec, recovery);
  FailoverRun run;
  run.outcome = harness.wait(handle, 600_s);
  run.session = session::SessionIdHash{}(handle.id);
  // Drain pending fault heals so transient fault windows close.
  if (crash_duration != SimTime::zero()) {
    harness.simulator().run(crash_at + crash_duration + 1_s);
  }
  return run;
}

/// Brownout + adaptive reroute scenario (the ablate_reroute shape): the
/// scheduled path's WAN hop throttles to 5% at t=2s and the RouteAdvisor
/// hands the live session over to depot.b, producing kHandover/kResume.
exp::Scenario reroute_scenario() {
  exp::Scenario s;
  s.hosts = {{"src", "site-a"},
             {"depot.a", "core-a"},
             {"depot.b", "core-b"},
             {"sink", "site-b"}};
  const auto link = [&s](const char* a, const char* b, double mbps,
                         double delay_ms) {
    exp::ScenarioLink l;
    l.a = a;
    l.b = b;
    l.config.rate = Bandwidth::mbps(mbps);
    l.config.propagation_delay = SimTime::from_seconds(delay_ms * 1e-3);
    l.config.queue_capacity_bytes = mib(4);
    l.config.loss_rate = 1e-5;
    s.links.push_back(std::move(l));
  };
  link("src", "depot.a", 100, 10);
  link("depot.a", "sink", 100, 10);
  link("src", "depot.b", 80, 12);
  link("depot.b", "sink", 80, 12);
  link("src", "sink", 20, 40);
  s.pins.push_back({"src", "sink"});
  s.depot.tcp = s.depot.tcp.with_buffers(mib(4));
  s.depot.user_buffer_bytes = mib(8);
  s.recovery = session::RecoveryConfig{};

  exp::ScenarioFault f;
  f.kind = fault::FaultKind::kLinkBrownout;
  f.a = "depot.a";
  f.b = "sink";
  f.at_s = 2.0;
  f.for_s = 120.0;
  f.loss = 0.0;
  f.rate_factor = 0.05;
  s.faults.push_back(std::move(f));

  exp::ScenarioReroute rr;
  rr.interval_s = 1.0;
  rr.hysteresis = 0.2;
  rr.dwell_s = 3.0;
  rr.penalty_s = 0.5;
  rr.sigma = 0.02;
  s.reroute = rr;

  exp::ScenarioTransfer t;
  t.src = "src";
  t.dst = "sink";
  t.via = {"depot.a"};
  t.bytes = mib(48);
  t.buffer_bytes = mib(4);
  s.transfers.push_back(std::move(t));
  return s;
}

// ---------------------------------------------------------------------------
// Well-formedness checks over an event stream

struct SpanIndex {
  std::map<std::uint64_t, obs::SpanEvent> begins;
  std::map<std::uint64_t, obs::SpanEvent> ends;  ///< keyed by span id
  std::vector<obs::SpanEvent> events;
};

SpanIndex index_spans(const std::vector<obs::SpanEvent>& events) {
  SpanIndex idx;
  idx.events = events;
  for (const auto& e : events) {
    if (e.phase == obs::SpanPhase::kBegin) {
      EXPECT_EQ(idx.begins.count(e.span_id), 0u)
          << "span id " << e.span_id << " begun twice";
      idx.begins[e.span_id] = e;
    } else if (e.phase == obs::SpanPhase::kEnd) {
      EXPECT_EQ(idx.ends.count(e.span_id), 0u)
          << "span id " << e.span_id << " ended twice";
      idx.ends[e.span_id] = e;
    }
  }
  return idx;
}

/// The invariants every complete span stream must satisfy: begins paired
/// with ends of the same kind/session, parents close at-or-after their
/// children, and parent/follows links resolve to spans that exist.
void expect_well_formed(const SpanIndex& idx) {
  for (const auto& [id, begin] : idx.begins) {
    const auto end = idx.ends.find(id);
    if (end == idx.ends.end() && begin.kind == obs::SpanKind::kFaultWindow) {
      // Fault windows may outlive the log: permanent faults never heal,
      // and transient ones can heal after the last transfer completes.
      continue;
    }
    ASSERT_NE(end, idx.ends.end())
        << obs::to_string(begin.kind) << " span " << id << " never ended";
    EXPECT_EQ(end->second.kind, begin.kind) << "span " << id;
    EXPECT_EQ(end->second.session, begin.session) << "span " << id;
    EXPECT_GE(end->second.ts, begin.ts) << "span " << id;
    if (begin.parent != 0) {
      const auto parent = idx.begins.find(begin.parent);
      ASSERT_NE(parent, idx.begins.end())
          << "span " << id << " parent " << begin.parent << " unknown";
      EXPECT_LE(parent->second.ts, begin.ts)
          << "child " << id << " began before parent " << begin.parent;
      const auto parent_end = idx.ends.find(begin.parent);
      ASSERT_NE(parent_end, idx.ends.end());
      EXPECT_GE(parent_end->second.ts, end->second.ts)
          << "parent " << begin.parent << " closed before child " << id;
    }
  }
  for (const auto& e : idx.events) {
    if (e.follows != 0) {
      EXPECT_EQ(idx.begins.count(e.follows), 1u)
          << "follows-from " << e.follows << " does not resolve";
    }
  }
}

std::vector<obs::SpanEvent> spans_of_kind(const SpanIndex& idx,
                                          obs::SpanKind kind,
                                          obs::SpanPhase phase) {
  std::vector<obs::SpanEvent> out;
  for (const auto& e : idx.events) {
    if (e.kind == kind && e.phase == phase) {
      out.push_back(e);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Failover chain

TEST(SpanTest, FailoverStreamIsWellFormed) {
  obs::SpanRecorder spans(0);
  const auto run = run_failover(spans, 42, 1_s, 3_s, /*retries=*/0,
                                /*cut_direct=*/false, /*blackhole=*/true);
  ASSERT_TRUE(run.outcome.completed);
  ASSERT_GE(run.outcome.retries, 1);

  const auto idx = index_spans(spans.snapshot());
  expect_well_formed(idx);

  // The transfer span exists, is parented by the harness session span, and
  // completed.
  const auto transfers =
      spans_of_kind(idx, obs::SpanKind::kTransfer, obs::SpanPhase::kBegin);
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(transfers[0].session, run.session);
  ASSERT_NE(transfers[0].parent, 0u);
  EXPECT_EQ(idx.begins.at(transfers[0].parent).kind, obs::SpanKind::kSession);
  EXPECT_STREQ(idx.ends.at(transfers[0].span_id).reason, "completed");

  // The failover chain: at least two attempts, each after the first
  // follows-from an earlier attempt of the same transfer.
  const auto attempts =
      spans_of_kind(idx, obs::SpanKind::kAttempt, obs::SpanPhase::kBegin);
  ASSERT_GE(attempts.size(), 2u);
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    EXPECT_EQ(attempts[i].parent, transfers[0].span_id);
    if (i == 0) {
      EXPECT_EQ(attempts[i].follows, 0u);
    } else {
      ASSERT_NE(attempts[i].follows, 0u);
      EXPECT_EQ(idx.begins.at(attempts[i].follows).kind,
                obs::SpanKind::kAttempt);
    }
  }

  // The injected crash shows up as a fault window, and the crash made the
  // recovery loop wait: stall + backoff evidence in the stream.
  EXPECT_FALSE(
      spans_of_kind(idx, obs::SpanKind::kFaultWindow, obs::SpanPhase::kBegin)
          .empty());
  EXPECT_FALSE(
      spans_of_kind(idx, obs::SpanKind::kBackoff, obs::SpanPhase::kBegin)
          .empty());
  EXPECT_FALSE(
      spans_of_kind(idx, obs::SpanKind::kStall, obs::SpanPhase::kComplete)
          .empty());
}

TEST(SpanTest, ExplainCategoriesSumToWallExactly) {
  obs::SpanRecorder spans(0);
  const auto run = run_failover(spans, 7, 1_s, 3_s, /*retries=*/0,
                                /*cut_direct=*/false, /*blackhole=*/true);
  ASSERT_TRUE(run.outcome.completed);

  const auto breakdowns = obs::account_spans(spans.snapshot());
  ASSERT_EQ(breakdowns.size(), 1u);
  const auto& b = breakdowns[0];
  EXPECT_EQ(b.session, run.session);
  EXPECT_TRUE(b.completed);
  EXPECT_GE(b.attempts, 2);
  // The invariant --explain rests on: categories sum to wall time exactly
  // (integer nanoseconds, not approximately).
  EXPECT_EQ(b.categorized(), b.wall());
  EXPECT_GT(b.wall(), SimTime::zero());
  // A depot crash mid-transfer cannot be all stream time.
  EXPECT_GT(b.stall + b.backoff + b.connect + b.probe, SimTime::zero());
  EXPECT_GT(b.stream, SimTime::zero());

  // Rendering is total: every transfer block prints, the filter selects.
  const std::string all = obs::render_breakdowns(breakdowns);
  EXPECT_NE(all.find("completed"), std::string::npos);
  EXPECT_NE(all.find("stall"), std::string::npos);
  const std::string none = obs::render_breakdowns(breakdowns, ~b.session);
  EXPECT_NE(none.find("no transfers recorded"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Planned handover (adaptive reroute)

TEST(SpanTest, HandoverFollowsFromResolvesAcrossReroute) {
  obs::SpanRecorder spans(0);
  obs::ScopedSpanRecorder scope(&spans);
  const auto outcomes = exp::run_scenario(reroute_scenario(), 5013, 600_s);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].outcome.completed);
  ASSERT_GE(outcomes[0].outcome.reroutes, 1);

  const auto idx = index_spans(spans.snapshot());
  expect_well_formed(idx);

  const auto handovers =
      spans_of_kind(idx, obs::SpanKind::kHandover, obs::SpanPhase::kBegin);
  ASSERT_GE(handovers.size(), 1u);
  EXPECT_STREQ(idx.ends.at(handovers[0].span_id).reason, "spliced");

  // The splice point: a kResume instant inside the handover span whose
  // follows-from link walks back to the drained attempt.
  bool found_resume = false;
  for (const auto& e : idx.events) {
    if (e.kind == obs::SpanKind::kResume && e.parent == handovers[0].span_id) {
      found_resume = true;
      EXPECT_STREQ(e.reason, "handover");
      ASSERT_NE(e.follows, 0u);
      EXPECT_EQ(idx.begins.at(e.follows).kind, obs::SpanKind::kAttempt);
      EXPECT_GT(e.value, 0.0);  // sink-committed offset
    }
  }
  EXPECT_TRUE(found_resume);

  // The advisor's verdicts are in the stream, and the one that triggered
  // the handover says so.
  bool saw_reroute_verdict = false;
  for (const auto& e : idx.events) {
    if (e.kind == obs::SpanKind::kRouteDecision) {
      EXPECT_EQ(e.phase, obs::SpanPhase::kInstant);
      saw_reroute_verdict |= std::strcmp(e.reason, "reroute") == 0;
    }
  }
  EXPECT_TRUE(saw_reroute_verdict);

  // Handover drain time is charged to the handover bucket.
  const auto breakdowns = obs::account_spans(spans.snapshot());
  ASSERT_EQ(breakdowns.size(), 1u);
  EXPECT_EQ(breakdowns[0].categorized(), breakdowns[0].wall());
  EXPECT_GE(breakdowns[0].handovers, 1);
  EXPECT_GT(breakdowns[0].handover, SimTime::zero());
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(SpanTest, FlightRecorderBoundsMemoryAndDumpsFailoverChain) {
  // Bounded ring, forced failure: the depot dies for good, the direct
  // fallback is cut too, and retries are capped -- the transfer must fail
  // and the ring must still hold the tail of the failover chain.
  obs::SpanRecorder spans(24);
  const auto run = run_failover(spans, 11, 500_ms, SimTime::zero(),
                                /*retries=*/2, /*cut_direct=*/true);
  ASSERT_FALSE(run.outcome.completed);
  ASSERT_TRUE(run.outcome.failed);

  EXPECT_TRUE(spans.bounded());
  EXPECT_EQ(spans.per_session_capacity(), 24u);
  // Per-session ring + global ring, each capped.
  EXPECT_LE(spans.size(), 24u * (spans.sessions().size() + 1));
  EXPECT_GT(spans.total_recorded(), 0u);

  const std::string dump = spans.post_mortem(run.session);
  EXPECT_NE(dump.find("attempt"), std::string::npos) << dump;
  EXPECT_NE(dump.find("transfer"), std::string::npos) << dump;
  EXPECT_NE(dump.find("failed"), std::string::npos) << dump;
}

TEST(SpanTest, SessionEventsIncludeGlobalContext) {
  obs::SpanRecorder spans(0);
  const auto run = run_failover(spans, 3, 1_s, 3_s);
  ASSERT_TRUE(run.outcome.completed);
  const auto events = spans.session_events(run.session);
  ASSERT_FALSE(events.empty());
  bool saw_fault = false;
  for (const auto& e : events) {
    EXPECT_TRUE(e.session == run.session || e.session == 0);
    saw_fault |= e.kind == obs::SpanKind::kFaultWindow;
  }
  // Fault windows are session-less context events; session_events must
  // interleave them so the post-mortem shows what was broken at the time.
  EXPECT_TRUE(saw_fault);
}

// ---------------------------------------------------------------------------
// --jobs determinism

void expect_same_events(const std::vector<obs::SpanEvent>& a,
                        const std::vector<obs::SpanEvent>& b,
                        std::size_t jobs) {
  ASSERT_EQ(a.size(), b.size()) << "jobs=" << jobs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts) << "jobs=" << jobs << " event " << i;
    EXPECT_EQ(a[i].dur, b[i].dur) << "jobs=" << jobs << " event " << i;
    EXPECT_EQ(a[i].span_id, b[i].span_id) << "jobs=" << jobs << " event " << i;
    EXPECT_EQ(a[i].parent, b[i].parent) << "jobs=" << jobs << " event " << i;
    EXPECT_EQ(a[i].follows, b[i].follows) << "jobs=" << jobs << " event " << i;
    EXPECT_EQ(a[i].session, b[i].session) << "jobs=" << jobs << " event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "jobs=" << jobs << " event " << i;
    EXPECT_EQ(a[i].phase, b[i].phase) << "jobs=" << jobs << " event " << i;
    EXPECT_STREQ(a[i].reason, b[i].reason)
        << "jobs=" << jobs << " event " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "jobs=" << jobs << " event " << i;
  }
}

TEST(SpanTest, MergedStreamAndExplainAreIdenticalForAnyJobs) {
  constexpr std::size_t kTrials = 6;
  const auto run_sweep = [&](std::size_t jobs, obs::SpanRecorder& parent) {
    obs::set_spans(&parent);
    exp::TrialOptions options;
    options.jobs = jobs;
    exp::for_each_trial(kTrials, options, [](std::size_t trial) {
      exp::SimHarness harness(1000 + trial);
      const auto a = harness.add_host("a");
      const auto b = harness.add_host("b");
      net::LinkConfig link;
      link.rate = Bandwidth::mbps(100);
      link.propagation_delay = 5_ms;
      link.queue_capacity_bytes = mib(1);
      harness.add_link(a, b, link);
      harness.deploy(session::DepotConfig{});
      session::TransferSpec spec;
      spec.dst = b;
      spec.payload_bytes = mib(1) + 4096 * trial;
      (void)harness.launch_reliable(a, spec);
      harness.wait_all(60_s);
    });
    obs::set_spans(nullptr);
  };

  obs::SpanRecorder serial(0);
  run_sweep(1, serial);
  const auto serial_events = serial.snapshot();
  ASSERT_FALSE(serial_events.empty());
  const std::string serial_explain =
      obs::render_breakdowns(obs::account_spans(serial_events));

  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    obs::SpanRecorder parallel(0);
    run_sweep(jobs, parallel);
    expect_same_events(serial_events, parallel.snapshot(), jobs);
    EXPECT_EQ(serial_explain,
              obs::render_breakdowns(obs::account_spans(parallel.snapshot())))
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace lsl
