// System-level stress: random topologies, many concurrent sessions with
// mixed modes (direct, relayed, striped, async) over lossy jittery links.
// The invariant under all of it: every completed transfer delivered exactly
// its byte count, and the system quiesces with no leaked connections.
#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "lsl/endpoint.hpp"
#include "util/rng.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;
using exp::SimHarness;

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, MixedWorkloadDeliversExactlyAndQuiesces) {
  Rng rng(GetParam());
  SimHarness h(GetParam() ^ 0x57E55);

  // Random connected topology: ring + random chords.
  const std::size_t hosts = 6 + rng.pick_index(5);
  for (std::size_t i = 0; i < hosts; ++i) {
    h.add_host("h" + std::to_string(i),
               "site" + std::to_string(i % ((hosts / 2) + 1)));
  }
  const auto random_link = [&] {
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(rng.uniform(30, 300));
    link.propagation_delay =
        SimTime::from_seconds(rng.uniform(0.002, 0.030));
    link.queue_capacity_bytes = kib(256) << rng.pick_index(4);
    link.loss_rate = rng.chance(0.5) ? rng.uniform(0.0, 2e-3) : 0.0;
    if (rng.chance(0.3)) {
      link.jitter = SimTime::from_seconds(rng.uniform(0.0, 0.002));
    }
    return link;
  };
  for (std::size_t i = 0; i < hosts; ++i) {
    h.add_link(static_cast<net::NodeId>(i),
               static_cast<net::NodeId>((i + 1) % hosts), random_link());
  }
  const std::size_t chords = 1 + rng.pick_index(hosts / 2);
  for (std::size_t c = 0; c < chords; ++c) {
    const auto a = static_cast<net::NodeId>(rng.pick_index(hosts));
    const auto b = static_cast<net::NodeId>(rng.pick_index(hosts));
    if (a != b && h.topology().link_between(a, b) == nullptr) {
      h.add_link(a, b, random_link());
    }
  }
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(kib(256) << rng.pick_index(3));
  cfg.user_buffer_bytes = mib(1) << rng.pick_index(2);
  h.deploy(cfg);

  // Launch a mixed batch of sessions.
  struct Expected {
    SimHarness::Handle handle;
    std::uint64_t bytes;
  };
  std::vector<Expected> batch;
  const std::size_t sessions = 8 + rng.pick_index(8);
  for (std::size_t s = 0; s < sessions; ++s) {
    const auto src = static_cast<net::NodeId>(rng.pick_index(hosts));
    auto dst = static_cast<net::NodeId>(rng.pick_index(hosts));
    if (dst == src) {
      dst = static_cast<net::NodeId>((dst + 1) % hosts);
    }
    session::TransferSpec spec;
    spec.dst = dst;
    spec.payload_bytes = kib(64) + rng.pick_index(mib(2));
    spec.tcp = tcp::TcpOptions{}.with_buffers(kib(128) << rng.pick_index(3));
    // Random relays through other hosts.
    const std::size_t relays = rng.pick_index(3);
    for (std::size_t v = 0; v < relays; ++v) {
      auto hop = static_cast<net::NodeId>(rng.pick_index(hosts));
      if (hop != src && hop != dst) {
        spec.via.push_back(hop);
      }
    }
    if (rng.chance(0.25) && spec.via.empty()) {
      spec.streams = static_cast<std::uint16_t>(2 + rng.pick_index(3));
    }
    batch.push_back(Expected{h.launch(src, spec), spec.payload_bytes});
  }

  const auto unfinished = h.wait_all(3600_s);
  EXPECT_EQ(unfinished, 0u);
  for (const auto& expected : batch) {
    const auto outcome = h.outcome(expected.handle);
    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.bytes, expected.bytes);
  }

  // Quiescence: after teardown drains, no connections remain anywhere.
  h.simulator().run(h.simulator().now() + 10_s);
  for (std::size_t i = 0; i < hosts; ++i) {
    EXPECT_EQ(h.stack(static_cast<net::NodeId>(i)).open_connections(), 0u)
        << "host " << i;
    EXPECT_EQ(h.depot(static_cast<net::NodeId>(i)).active_sessions(), 0u)
        << "host " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ConcurrentFetchTest, TwoReceiversFetchTheSameStoredSession) {
  SimHarness h(81);
  const auto a = h.add_host("a");
  const auto d = h.add_host("d");
  const auto r1 = h.add_host("r1");
  const auto r2 = h.add_host("r2");
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(100);
  link.propagation_delay = 4_ms;
  h.add_link(a, d, link);
  h.add_link(d, r1, link);
  h.add_link(d, r2, link);
  session::DepotConfig cfg;
  cfg.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  h.deploy(cfg);

  session::TransferSpec spec;
  spec.dst = r1;
  spec.via = {d};
  spec.async_session = true;
  spec.payload_bytes = mib(2);
  spec.tcp = tcp::TcpOptions{}.with_buffers(mib(1));
  auto source = session::LslSource::start(h.stack(a), spec, h.rng());
  const auto id = source->session_id();
  h.simulator().run(h.simulator().now() + 30_s);
  ASSERT_TRUE(h.depot(d).stored_bytes(id).has_value());

  // Both receivers fetch concurrently; the store is non-destructive.
  int fetched = 0;
  auto f1 = session::AsyncFetcher::start(h.stack(r1), d, id,
                                         tcp::TcpOptions{}.with_buffers(mib(1)));
  auto f2 = session::AsyncFetcher::start(h.stack(r2), d, id,
                                         tcp::TcpOptions{}.with_buffers(mib(1)));
  for (auto* f : {f1.get(), f2.get()}) {
    f->on_complete = [&](const session::AsyncFetcher::Result& result) {
      EXPECT_EQ(result.bytes, mib(2));
      ++fetched;
    };
  }
  h.simulator().run(h.simulator().now() + 60_s);
  EXPECT_EQ(fetched, 2);
  EXPECT_TRUE(h.depot(d).stored_bytes(id).has_value());
}

}  // namespace
}  // namespace lsl
