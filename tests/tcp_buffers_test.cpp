#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tcp/recv_buffer.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/send_buffer.hpp"

namespace lsl::tcp {
namespace {

using namespace lsl::time_literals;

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

TEST(SendBufferTest, SyntheticAccounting) {
  SendBuffer buf(1000);
  EXPECT_EQ(buf.append_synthetic(600), 600u);
  EXPECT_EQ(buf.used(), 600u);
  EXPECT_EQ(buf.free_space(), 400u);
  EXPECT_EQ(buf.append_synthetic(600), 400u);  // clipped to capacity
  EXPECT_EQ(buf.free_space(), 0u);
}

TEST(SendBufferTest, ReleaseFreesSpace) {
  SendBuffer buf(1000);
  buf.append_synthetic(1000);
  buf.release_through(250);
  EXPECT_EQ(buf.head(), 250u);
  EXPECT_EQ(buf.free_space(), 250u);
  // Releasing backwards is a no-op.
  buf.release_through(100);
  EXPECT_EQ(buf.head(), 250u);
}

TEST(SendBufferTest, RealPrefixThenSynthetic) {
  SendBuffer buf(1000);
  const auto header = bytes_of("HDR!");
  EXPECT_EQ(buf.append_bytes(header), 4u);
  EXPECT_EQ(buf.append_synthetic(100), 100u);
  const auto slice = buf.content_slice(0, 4);
  ASSERT_EQ(slice.size(), 4u);
  EXPECT_EQ(std::memcmp(slice.data(), "HDR!", 4), 0);
}

TEST(SendBufferTest, ContentSlicePartialOverlap) {
  SendBuffer buf(1000);
  buf.append_bytes(bytes_of("ABCDEFGH"));
  buf.append_synthetic(92);
  const auto mid = buf.content_slice(4, 100);
  ASSERT_EQ(mid.size(), 4u);  // only EFGH is real
  EXPECT_EQ(std::memcmp(mid.data(), "EFGH", 4), 0);
  EXPECT_TRUE(buf.content_slice(8, 10).empty());
  EXPECT_TRUE(buf.content_slice(50, 10).empty());
}

TEST(RecvBufferTest, InOrderDelivery) {
  RecvBuffer buf(1000);
  const auto r = buf.on_segment(0, 100, {});
  EXPECT_TRUE(r.advanced);
  EXPECT_EQ(buf.readable(), 100u);
  EXPECT_EQ(buf.read(60).n, 60u);
  EXPECT_EQ(buf.readable(), 40u);
  EXPECT_EQ(buf.read(1000).n, 40u);
}

TEST(RecvBufferTest, OutOfOrderReassembly) {
  RecvBuffer buf(10000);
  EXPECT_FALSE(buf.on_segment(100, 100, {}).advanced);
  EXPECT_EQ(buf.readable(), 0u);
  EXPECT_EQ(buf.ooo_bytes(), 100u);
  const auto r = buf.on_segment(0, 100, {});
  EXPECT_TRUE(r.advanced);
  EXPECT_EQ(buf.readable(), 200u);  // hole filled, OOO merged
  EXPECT_EQ(buf.ooo_bytes(), 0u);
}

TEST(RecvBufferTest, DuplicateSegmentsIgnored) {
  RecvBuffer buf(10000);
  buf.on_segment(0, 100, {});
  const auto dup = buf.on_segment(0, 100, {});
  EXPECT_FALSE(dup.advanced);
  EXPECT_EQ(dup.accepted, 0u);
  EXPECT_EQ(buf.readable(), 100u);
}

TEST(RecvBufferTest, OverlappingRetransmitTrimmed) {
  RecvBuffer buf(10000);
  buf.on_segment(0, 150, {});
  const auto r = buf.on_segment(100, 100, {});  // 100 old + 100 new? no: 50 old
  EXPECT_TRUE(r.advanced);
  EXPECT_EQ(buf.readable(), 200u);
}

TEST(RecvBufferTest, MultipleOooRangesMergeInOrder) {
  RecvBuffer buf(100000);
  buf.on_segment(200, 100, {});
  buf.on_segment(400, 100, {});
  buf.on_segment(100, 100, {});
  EXPECT_EQ(buf.readable(), 0u);
  buf.on_segment(0, 100, {});
  EXPECT_EQ(buf.readable(), 300u);  // 0..300 contiguous; 400..500 still OOO
  EXPECT_EQ(buf.ooo_bytes(), 100u);
  buf.on_segment(300, 100, {});
  EXPECT_EQ(buf.readable(), 500u);
  EXPECT_EQ(buf.ooo_bytes(), 0u);
}

TEST(RecvBufferTest, WindowShrinksWithUnreadData) {
  RecvBuffer buf(1000);
  EXPECT_EQ(buf.window(), 1000u);
  buf.on_segment(0, 400, {});
  EXPECT_EQ(buf.window(), 600u);
  buf.read(400);
  EXPECT_EQ(buf.window(), 1000u);
}

TEST(RecvBufferTest, DataBeyondWindowClamped) {
  RecvBuffer buf(1000);
  const auto r = buf.on_segment(0, 5000, {});
  EXPECT_TRUE(r.advanced);
  EXPECT_EQ(r.accepted, 1000u);
  EXPECT_EQ(buf.readable(), 1000u);
  EXPECT_EQ(buf.window(), 0u);
}

TEST(RecvBufferTest, OooDataDoesNotShrinkAdvertisedWindow) {
  // Held out-of-order data lives *within* the offered window; advertising
  // from the in-order frontier keeps dup-ACK windows stable during loss.
  RecvBuffer buf(1000);
  buf.on_segment(500, 300, {});
  EXPECT_EQ(buf.window(), 1000u);
  EXPECT_EQ(buf.ooo_bytes(), 300u);
}

TEST(RecvBufferTest, OooRangesRecencyOrdering) {
  RecvBuffer buf(100000);
  buf.on_segment(100, 50, {});
  buf.on_segment(300, 50, {});
  buf.on_segment(500, 50, {});
  const auto ranges = buf.ooo_ranges(4);
  ASSERT_EQ(ranges.size(), 3u);
  // Most recently arrived block first.
  EXPECT_EQ(ranges[0].first, 500u);
  EXPECT_EQ(ranges[1].first, 300u);
  EXPECT_EQ(ranges[2].first, 100u);
}

TEST(RecvBufferTest, OooRangesCapped) {
  RecvBuffer buf(1000000);
  for (int i = 0; i < 10; ++i) {
    buf.on_segment(100 + 200 * static_cast<std::uint64_t>(i), 50, {});
  }
  EXPECT_EQ(buf.ooo_ranges(4).size(), 4u);
}

TEST(RecvBufferTest, ContentPrefixSurvivesReassembly) {
  RecvBuffer buf(10000);
  // Content arrives out of order in two pieces.
  auto part2 = bytes_of("WORLD");
  buf.on_segment(5, 5, part2);
  auto part1 = bytes_of("HELLO");
  buf.on_segment(0, 5, part1);
  const auto r = buf.read(10);
  ASSERT_EQ(r.n, 10u);
  ASSERT_EQ(r.real_bytes.size(), 10u);
  EXPECT_EQ(std::memcmp(r.real_bytes.data(), "HELLOWORLD", 10), 0);
}

TEST(RecvBufferTest, ReadPastContentReturnsOnlyRealPart) {
  RecvBuffer buf(10000);
  auto hdr = bytes_of("HDR");
  buf.on_segment(0, 500, hdr);  // 3 real bytes + 497 synthetic
  const auto r = buf.read(500);
  EXPECT_EQ(r.n, 500u);
  ASSERT_EQ(r.real_bytes.size(), 3u);
  EXPECT_EQ(std::memcmp(r.real_bytes.data(), "HDR", 3), 0);
  // Subsequent reads have no real content.
  buf.on_segment(500, 100, {});
  EXPECT_TRUE(buf.read(100).real_bytes.empty());
}

TEST(RttEstimatorTest, FirstSampleInitializes) {
  RttEstimator est{TcpOptions{}};
  EXPECT_FALSE(est.has_sample());
  est.add_sample(100_ms);
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), 100_ms);
  EXPECT_EQ(est.rttvar(), 50_ms);
  // rto = srtt + 4*rttvar = 300ms
  EXPECT_EQ(est.rto(), 300_ms);
}

TEST(RttEstimatorTest, SmoothingConverges) {
  RttEstimator est{TcpOptions{}};
  for (int i = 0; i < 100; ++i) {
    est.add_sample(80_ms);
  }
  EXPECT_NEAR(est.srtt().to_milliseconds(), 80.0, 1.0);
  // With zero variance the RTO clamps to min_rto... srtt + small var.
  EXPECT_GE(est.rto(), TcpOptions{}.min_rto);
}

TEST(RttEstimatorTest, BackoffDoubles) {
  RttEstimator est{TcpOptions{}};
  est.add_sample(100_ms);
  const SimTime before = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto(), before * 2);
  est.backoff();
  EXPECT_EQ(est.rto(), before * 4);
}

TEST(RttEstimatorTest, BackoffClampsAtMax) {
  RttEstimator est{TcpOptions{}};
  est.add_sample(1_s);
  for (int i = 0; i < 20; ++i) {
    est.backoff();
  }
  EXPECT_EQ(est.rto(), TcpOptions{}.max_rto);
}

TEST(RttEstimatorTest, NewSampleResetsBackoff) {
  RttEstimator est{TcpOptions{}};
  est.add_sample(100_ms);
  est.backoff();
  est.backoff();
  est.add_sample(100_ms);
  EXPECT_LT(est.rto(), 1_s);
}

}  // namespace
}  // namespace lsl::tcp
