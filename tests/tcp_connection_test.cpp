#include <gtest/gtest.h>

#include <cstring>

#include "fixtures.hpp"
#include "net/link.hpp"
#include "tcp/connection.hpp"
#include "util/units.hpp"

namespace lsl::tcp {
namespace {

using namespace lsl::time_literals;
using testing::TwoNodeNet;
using testing::run_bulk_transfer;

net::LinkConfig wan(double mbit, SimTime one_way, double loss = 0.0) {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(mbit);
  cfg.propagation_delay = one_way;
  cfg.queue_capacity_bytes = mib(2);
  cfg.loss_rate = loss;
  return cfg;
}

TEST(TcpConnectionTest, HandshakeEstablishes) {
  TwoNodeNet net(wan(100, 10_ms));
  bool client_connected = false;
  bool server_accepted = false;
  net.stack_b->listen(80, [&](Connection::Ptr) { server_accepted = true; });
  auto c = net.stack_a->connect(net.b, 80);
  c->on_connected = [&] { client_connected = true; };
  net.sim.run(1_s);
  EXPECT_TRUE(client_connected);
  EXPECT_TRUE(server_accepted);
  EXPECT_EQ(c->state(), TcpState::kEstablished);
}

TEST(TcpConnectionTest, SmallTransferDeliversExactly) {
  TwoNodeNet net(wan(100, 5_ms));
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   10'000, TcpOptions{});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, 10'000u);
}

TEST(TcpConnectionTest, LargeTransferDeliversExactly) {
  TwoNodeNet net(wan(100, 5_ms));
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   mib(8), TcpOptions{}.with_buffers(mib(1)));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, mib(8));
}

TEST(TcpConnectionTest, LosslessGoodputApproachesLinkRate) {
  TwoNodeNet net(wan(100, 2_ms));
  // Socket buffers below the queue capacity: flow control prevents
  // slow-start overshoot drops, so the link saturates cleanly.
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   mib(16), TcpOptions{}.with_buffers(mib(1)));
  ASSERT_TRUE(r.completed);
  // 40B/1460B header overhead caps goodput at ~97% of the raw link rate.
  EXPECT_GT(r.goodput.megabits_per_second(), 85.0);
  EXPECT_LT(r.goodput.megabits_per_second(), 98.0);
}

TEST(TcpConnectionTest, WindowLimitedThroughputMatchesBufferOverRtt) {
  // 64 KB buffers over an 80ms RTT path: ceiling = 64KB/80ms = 6.55 Mbit/s.
  TwoNodeNet net(wan(1000, 40_ms));
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   mib(8), TcpOptions{});  // default 64 KB
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.goodput.megabits_per_second(), 6.55, 1.0);
}

TEST(TcpConnectionTest, ThroughputScalesInverselyWithRtt) {
  // The core premise of the paper: same buffers, half the RTT, about twice
  // the window-limited throughput.
  TwoNodeNet short_net(wan(1000, 20_ms));
  TwoNodeNet long_net(wan(1000, 40_ms));
  const auto fast = run_bulk_transfer(short_net.sim, *short_net.stack_a,
                                      *short_net.stack_b, mib(8), TcpOptions{});
  const auto slow = run_bulk_transfer(long_net.sim, *long_net.stack_a,
                                      *long_net.stack_b, mib(8), TcpOptions{});
  ASSERT_TRUE(fast.completed);
  ASSERT_TRUE(slow.completed);
  const double ratio = fast.goodput.bits_per_second() /
                       slow.goodput.bits_per_second();
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(TcpConnectionTest, SurvivesPacketLossAndDeliversExactly) {
  TwoNodeNet net(wan(50, 10_ms, /*loss=*/0.01));
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   mib(2), TcpOptions{}.with_buffers(mib(1)));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, mib(2));
  EXPECT_GT(r.sender_stats.retransmits, 0u);
}

TEST(TcpConnectionTest, LossReducesThroughput) {
  TwoNodeNet clean(wan(100, 20_ms));
  TwoNodeNet lossy(wan(100, 20_ms, /*loss=*/0.002));
  const auto opts = TcpOptions{}.with_buffers(mib(4));
  const auto r_clean = run_bulk_transfer(clean.sim, *clean.stack_a,
                                         *clean.stack_b, mib(8), opts);
  const auto r_lossy = run_bulk_transfer(lossy.sim, *lossy.stack_a,
                                         *lossy.stack_b, mib(8), opts);
  ASSERT_TRUE(r_clean.completed);
  ASSERT_TRUE(r_lossy.completed);
  EXPECT_LT(r_lossy.goodput.bits_per_second(),
            0.6 * r_clean.goodput.bits_per_second());
}

TEST(TcpConnectionTest, FastRetransmitUsedBeforeTimeout) {
  TwoNodeNet net(wan(100, 10_ms, /*loss=*/0.005));
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   mib(4), TcpOptions{}.with_buffers(mib(2)));
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.sender_stats.fast_retransmits, 0u);
  // With plentiful dupacks most recoveries avoid the RTO path.
  EXPECT_LT(r.sender_stats.timeouts, r.sender_stats.fast_retransmits);
}

TEST(TcpConnectionTest, ContentPrefixDeliveredIntact) {
  TwoNodeNet net(wan(100, 5_ms));
  constexpr net::Port kPort = 90;
  std::vector<std::byte> got;
  std::uint64_t got_count = 0;
  bool done = false;
  net.stack_b->listen(kPort, [&](Connection::Ptr conn) {
    conn->on_readable = [&, c = conn.get()] {
      auto rr = c->read(c->readable_bytes());
      got_count += rr.n;
      got.insert(got.end(), rr.real_bytes.begin(), rr.real_bytes.end());
    };
    conn->on_eof = [&] { done = true; };
  });
  auto c = net.stack_a->connect(net.b, kPort);
  c->on_connected = [&, cp = c.get()] {
    const char hdr[] = "LSL-SESSION-HEADER";
    std::vector<std::byte> h(sizeof hdr - 1);
    std::memcpy(h.data(), hdr, h.size());
    cp->write_bytes(h);
    cp->write_synthetic(50'000);
    cp->close();
  };
  net.sim.run(30_s);
  ASSERT_TRUE(done);
  EXPECT_EQ(got_count, 18u + 50'000u);
  ASSERT_EQ(got.size(), 18u);
  EXPECT_EQ(std::memcmp(got.data(), "LSL-SESSION-HEADER", 18), 0);
}

TEST(TcpConnectionTest, ReceiverBackpressureStallsSender) {
  TwoNodeNet net(wan(100, 2_ms));
  constexpr net::Port kPort = 91;
  Connection::Ptr server;
  net.stack_b->listen(kPort, [&](Connection::Ptr conn) { server = conn; },
                      TcpOptions{});
  auto c = net.stack_a->connect(net.b, kPort, TcpOptions{}.with_buffers(mib(1)));
  c->on_connected = [cp = c.get()] { cp->write_synthetic(mib(1)); };
  // Receiver app never reads: the sender can push at most
  // recv_buffer + a little in flight.
  net.sim.run(5_s);
  ASSERT_NE(server, nullptr);
  EXPECT_LE(server->readable_bytes(), TcpOptions{}.recv_buffer_bytes);
  const std::uint64_t acked_before = c->acked_payload();
  EXPECT_LE(acked_before, TcpOptions{}.recv_buffer_bytes + 2 * mib(1) / 100);

  // Now drain the receiver; the stall must resolve and deliver everything.
  std::uint64_t drained = 0;
  server->on_readable = [&, s = server.get()] {
    drained += s->read(s->readable_bytes()).n;
  };
  drained += server->read(server->readable_bytes()).n;
  net.sim.run(60_s);
  EXPECT_EQ(drained, mib(1));
}

TEST(TcpConnectionTest, GracefulCloseBothDirections) {
  TwoNodeNet net(wan(100, 5_ms));
  constexpr net::Port kPort = 92;
  bool server_eof = false;
  bool server_closed = false;
  bool client_closed = false;
  net.stack_b->listen(kPort, [&](Connection::Ptr conn) {
    conn->on_readable = [c = conn.get()] { c->read(c->readable_bytes()); };
    conn->on_eof = [&, c = conn.get()] {
      server_eof = true;
      c->close();
    };
    conn->on_closed = [&] { server_closed = true; };
  });
  auto c = net.stack_a->connect(net.b, kPort);
  c->on_connected = [cp = c.get()] {
    cp->write_synthetic(5000);
    cp->close();
  };
  c->on_closed = [&] { client_closed = true; };
  net.sim.run(30_s);
  EXPECT_TRUE(server_eof);
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(net.stack_a->open_connections(), 0u);
  EXPECT_EQ(net.stack_b->open_connections(), 0u);
}

TEST(TcpConnectionTest, AbortSendsRstAndTearsDown) {
  TwoNodeNet net(wan(100, 5_ms));
  constexpr net::Port kPort = 93;
  bool server_closed = false;
  net.stack_b->listen(kPort, [&](Connection::Ptr conn) {
    conn->on_closed = [&] { server_closed = true; };
  });
  auto c = net.stack_a->connect(net.b, kPort);
  c->on_connected = [cp = c.get()] { cp->abort(); };
  net.sim.run(5_s);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(c->state(), TcpState::kDead);
}

TEST(TcpConnectionTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    TwoNodeNet net(wan(80, 15_ms, 0.001), /*seed=*/1234);
    return run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, mib(4),
                             TcpOptions{}.with_buffers(mib(1)));
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r2.completed);
  EXPECT_EQ(r1.elapsed, r2.elapsed);
  EXPECT_EQ(r1.sender_stats.retransmits, r2.sender_stats.retransmits);
  EXPECT_EQ(r1.sender_stats.segments_sent, r2.sender_stats.segments_sent);
}

TEST(TcpConnectionTest, TwoSimultaneousFlowsShareLink) {
  TwoNodeNet net(wan(100, 10_ms));
  const auto opts = TcpOptions{}.with_buffers(mib(2));
  constexpr net::Port kP1 = 7001;
  constexpr net::Port kP2 = 7002;
  std::uint64_t rx1 = 0;
  std::uint64_t rx2 = 0;
  int done = 0;
  const auto serve = [&](std::uint64_t& counter) {
    return [&counter, &done](Connection::Ptr conn) {
      conn->on_readable = [&counter, c = conn.get()] {
        counter += c->read(c->readable_bytes()).n;
      };
      conn->on_eof = [&counter, &done, c = conn.get()] {
        counter += c->read(c->readable_bytes()).n;
        ++done;
      };
    };
  };
  net.stack_b->listen(kP1, serve(rx1), opts);
  net.stack_b->listen(kP2, serve(rx2), opts);
  for (const net::Port port : {kP1, kP2}) {
    auto c = net.stack_a->connect(net.b, port, opts);
    auto queued = std::make_shared<std::uint64_t>(0);
    const auto pump = [cp = c.get(), queued] {
      constexpr std::uint64_t kTarget = mib(4);
      while (*queued < kTarget) {
        const std::uint64_t n = cp->write_synthetic(kTarget - *queued);
        *queued += n;
        if (n == 0) {
          return;
        }
      }
      cp->close();
    };
    c->on_connected = pump;
    c->on_writable = pump;
  }
  net.sim.run(120_s);
  // Both flows make progress; neither starves.
  EXPECT_GT(rx1, mib(1));
  EXPECT_GT(rx2, mib(1));
}

}  // namespace
}  // namespace lsl::tcp
