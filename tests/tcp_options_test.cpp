// Tests for the TCP behavioural options: delayed acknowledgments and the
// SYN retry cap.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "tcp/connection.hpp"

namespace lsl::tcp {
namespace {

using namespace lsl::time_literals;
using testing::TwoNodeNet;
using testing::run_bulk_transfer;

net::LinkConfig lan() {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(500);
  cfg.propagation_delay = 2_ms;
  cfg.queue_capacity_bytes = mib(4);
  return cfg;
}

TEST(DelayedAckTest, RoughlyHalvesAckTraffic) {
  const auto count_acks = [](bool delayed) {
    TwoNodeNet net(lan());
    auto opts = TcpOptions{}.with_buffers(mib(1));
    opts.delayed_ack = delayed;
    const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                     mib(4), opts);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.bytes_delivered, mib(4));
    // Receiver-side segments are almost all pure ACKs.
    return net.topo->link(1).stats().packets_sent;  // b -> a direction
  };
  const auto immediate = count_acks(false);
  const auto delayed = count_acks(true);
  EXPECT_LT(delayed, immediate * 2 / 3);
  EXPECT_GT(delayed, immediate / 3);
}

TEST(DelayedAckTest, TransferStillDeliversExactlyUnderLoss) {
  net::LinkConfig link = lan();
  link.loss_rate = 2e-3;
  TwoNodeNet net(link);
  auto opts = TcpOptions{}.with_buffers(mib(1));
  opts.delayed_ack = true;
  const auto r =
      run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, mib(2), opts);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, mib(2));
}

TEST(DelayedAckTest, OutOfOrderDataStillAckedImmediately) {
  // Dup-ACK generation must survive delayed ACKs or fast retransmit dies;
  // verify loss recovery still happens via fast retransmit, not RTO only.
  net::LinkConfig link = lan();
  link.loss_rate = 1e-3;
  TwoNodeNet net(link);
  auto opts = TcpOptions{}.with_buffers(mib(1));
  opts.delayed_ack = true;
  const auto r =
      run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, mib(8), opts);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.sender_stats.fast_retransmits, 0u);
}

TEST(DelayedAckTest, IdleTimeoutFlushesTheAck) {
  // A single small segment (below the 2-segment threshold) must still be
  // acknowledged within the delayed-ACK timeout, not sit forever.
  TwoNodeNet net(lan());
  auto opts = TcpOptions{};
  opts.delayed_ack = true;
  constexpr net::Port kPort = 5001;
  net.stack_b->listen(kPort, [](Connection::Ptr conn) {
    conn->on_readable = [c = conn.get()] { c->read(c->readable_bytes()); };
  }, opts);
  auto client = net.stack_a->connect(net.b, kPort, opts);
  client->on_connected = [c = client.get()] { c->write_synthetic(500); };
  net.sim.run(2_s);
  // All 500 bytes acknowledged despite never reaching 2 segments.
  EXPECT_EQ(client->acked_payload(), 500u);
}

TEST(SynRetryTest, ConnectToDeadPortEventuallyGivesUp) {
  TwoNodeNet net(lan());
  auto opts = TcpOptions{};
  opts.max_syn_retries = 3;
  bool closed = false;
  auto c = net.stack_a->connect(net.b, 9999, opts);  // nobody listens
  c->on_closed = [&] { closed = true; };
  net.sim.run(120_s);
  EXPECT_TRUE(closed);
  EXPECT_EQ(c->state(), TcpState::kDead);
  EXPECT_EQ(net.stack_a->open_connections(), 0u);
}

TEST(SynRetryTest, RetryCountIsRespected) {
  TwoNodeNet net(lan());
  auto opts = TcpOptions{};
  opts.max_syn_retries = 2;
  auto c = net.stack_a->connect(net.b, 9999, opts);
  net.sim.run(600_s);
  // SYN + 2 retries, then death: timeouts == retries + the final one.
  EXPECT_LE(c->stats().retransmits, 2u);
  EXPECT_EQ(c->state(), TcpState::kDead);
}

TEST(SynRetryTest, SlowHandshakeStillSucceedsWithinBudget) {
  net::LinkConfig link = lan();
  link.loss_rate = 0.4;  // brutal, but the retry budget should cover it
  TwoNodeNet net(link, /*seed=*/99);
  bool connected = false;
  net.stack_b->listen(80, [](Connection::Ptr) {});
  auto c = net.stack_a->connect(net.b, 80);  // default 6 retries
  c->on_connected = [&] { connected = true; };
  net.sim.run(120_s);
  EXPECT_TRUE(connected);
}

}  // namespace
}  // namespace lsl::tcp
