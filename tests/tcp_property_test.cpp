// Property sweep over the TCP substrate: for every combination of loss
// rate, buffer size, SACK mode, and delayed-ACK mode, a bulk transfer must
// deliver exactly its byte count, terminate, and leave no connections
// behind. These are the invariants everything above the transport relies
// on.
#include <gtest/gtest.h>

#include <tuple>

#include "fixtures.hpp"
#include "tcp/connection.hpp"

namespace lsl::tcp {
namespace {

using namespace lsl::time_literals;
using testing::TwoNodeNet;
using testing::run_bulk_transfer;

struct PropertyCase {
  double loss;
  std::uint64_t buffer;
  bool sack;
  bool delack;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const auto& c = info.param;
  char buf[96];
  std::snprintf(buf, sizeof buf, "loss%zu_buf%lluk_%s_%s_s%llu",
                static_cast<std::size_t>(c.loss * 1e5),
                static_cast<unsigned long long>(c.buffer / 1024),
                c.sack ? "sack" : "reno", c.delack ? "delack" : "perseg",
                static_cast<unsigned long long>(c.seed));
  return buf;
}

class TcpConservationTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(TcpConservationTest, ExactDeliveryAndCleanTermination) {
  const auto& c = GetParam();
  net::LinkConfig link;
  link.rate = Bandwidth::mbps(100);
  link.propagation_delay = 12_ms;
  link.queue_capacity_bytes = mib(1);
  link.loss_rate = c.loss;
  TwoNodeNet net(link, c.seed);

  auto options = TcpOptions{}.with_buffers(c.buffer);
  options.sack_enabled = c.sack;
  options.delayed_ack = c.delack;

  const std::uint64_t bytes = mib(2) + 12345;  // deliberately unaligned
  const auto r = run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b,
                                   bytes, options, 3600_s);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes_delivered, bytes);

  // Everything torn down: TIME_WAIT drains within seconds.
  net.sim.run(net.sim.now() + 5_s);
  EXPECT_EQ(net.stack_a->open_connections(), 0u);
  EXPECT_EQ(net.stack_b->open_connections(), 0u);
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  std::uint64_t seed = 1;
  for (const double loss : {0.0, 1e-4, 2e-3, 2e-2}) {
    for (const std::uint64_t buffer : {64 * kKiB, mib(1)}) {
      for (const bool sack : {true, false}) {
        for (const bool delack : {false, true}) {
          cases.push_back(PropertyCase{loss, buffer, sack, delack, seed++});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, TcpConservationTest,
                         ::testing::ValuesIn(make_cases()), case_name);

class TcpDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpDeterminismTest, IdenticalSeedsProduceIdenticalRuns) {
  const auto run_once = [&] {
    net::LinkConfig link;
    link.rate = Bandwidth::mbps(80);
    link.propagation_delay = 15_ms;
    link.queue_capacity_bytes = kib(512);
    link.loss_rate = 1e-3;
    TwoNodeNet net(link, GetParam());
    return run_bulk_transfer(net.sim, *net.stack_a, *net.stack_b, mib(3),
                             TcpOptions{}.with_buffers(mib(1)), 3600_s);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  ASSERT_TRUE(r1.completed);
  EXPECT_EQ(r1.elapsed, r2.elapsed);
  EXPECT_EQ(r1.sender_stats.segments_sent, r2.sender_stats.segments_sent);
  EXPECT_EQ(r1.sender_stats.retransmits, r2.sender_stats.retransmits);
  EXPECT_EQ(r1.sender_stats.timeouts, r2.sender_stats.timeouts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpDeterminismTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace lsl::tcp
