#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "tcp/stack.hpp"

namespace lsl::tcp {
namespace {

using namespace lsl::time_literals;
using testing::TwoNodeNet;

net::LinkConfig lan() {
  net::LinkConfig cfg;
  cfg.rate = Bandwidth::mbps(1000);
  cfg.propagation_delay = 1_ms;
  return cfg;
}

TEST(TcpStackTest, EphemeralPortsAreDistinct) {
  TwoNodeNet net(lan());
  net.stack_b->listen(80, [](Connection::Ptr) {});
  auto c1 = net.stack_a->connect(net.b, 80);
  auto c2 = net.stack_a->connect(net.b, 80);
  auto c3 = net.stack_a->connect(net.b, 80);
  EXPECT_NE(c1->local_port(), c2->local_port());
  EXPECT_NE(c2->local_port(), c3->local_port());
  net.sim.run(2_s);
  EXPECT_EQ(c1->state(), TcpState::kEstablished);
  EXPECT_EQ(c3->state(), TcpState::kEstablished);
}

TEST(TcpStackTest, MultipleListenersIndependent) {
  TwoNodeNet net(lan());
  int hits_80 = 0;
  int hits_443 = 0;
  net.stack_b->listen(80, [&](Connection::Ptr) { ++hits_80; });
  net.stack_b->listen(443, [&](Connection::Ptr) { ++hits_443; });
  net.stack_a->connect(net.b, 80);
  net.stack_a->connect(net.b, 443);
  net.stack_a->connect(net.b, 443);
  net.sim.run(2_s);
  EXPECT_EQ(hits_80, 1);
  EXPECT_EQ(hits_443, 2);
}

TEST(TcpStackTest, SynToClosedPortIsDropped) {
  TwoNodeNet net(lan());
  auto c = net.stack_a->connect(net.b, 9999);  // nobody listening
  net.sim.run(3_s);
  // The SYN is silently dropped; the client keeps retrying (SYN_SENT).
  EXPECT_EQ(c->state(), TcpState::kSynSent);
  EXPECT_GT(c->stats().timeouts, 0u);
}

TEST(TcpStackTest, SynRetriesAreCappedAndSurfaceConnectTimeout) {
  TwoNodeNet net(lan());
  auto c = net.stack_a->connect(net.b, 9999);  // nobody listening, ever
  ConnectionError seen = ConnectionError::kNone;
  bool closed = false;
  c->on_error = [&](ConnectionError e) { seen = e; };
  c->on_closed = [&] { closed = true; };
  net.sim.run(600_s);
  // After max_syn_retries doublings the attempt gives up for good and the
  // failure surfaces to the application instead of retrying forever.
  EXPECT_EQ(c->state(), TcpState::kDead);
  EXPECT_TRUE(closed);
  EXPECT_EQ(seen, ConnectionError::kConnectTimeout);
  EXPECT_EQ(c->last_error(), ConnectionError::kConnectTimeout);
  EXPECT_LE(c->stats().timeouts, 1u + c->options().max_syn_retries);
  EXPECT_EQ(net.stack_a->open_connections(), 0u);
}

TEST(TcpStackTest, PeerAbortSurfacesResetButCleanEofDoesNot) {
  TwoNodeNet net(lan());
  net.stack_b->listen(80, [](Connection::Ptr conn) {
    conn->on_readable = [c = conn.get()] {
      (void)c->read(c->readable_bytes());
      c->abort();  // slam the door mid-stream
    };
  });
  auto aborted = net.stack_a->connect(net.b, 80);
  ConnectionError aborted_error = ConnectionError::kNone;
  aborted->on_connected = [c = aborted.get()] { c->write_synthetic(kib(64)); };
  aborted->on_error = [&](ConnectionError e) { aborted_error = e; };
  net.sim.run(5_s);
  EXPECT_EQ(aborted_error, ConnectionError::kReset);
  EXPECT_EQ(aborted->last_error(), ConnectionError::kReset);

  // A clean close never fires on_error.
  net.stack_b->listen(81, [](Connection::Ptr conn) {
    conn->on_readable = [c = conn.get()] { (void)c->read(c->readable_bytes()); };
    conn->on_eof = [c = conn.get()] {
      (void)c->read(c->readable_bytes());
      c->close();
    };
  });
  auto clean = net.stack_a->connect(net.b, 81);
  ConnectionError clean_error = ConnectionError::kNone;
  bool clean_closed = false;
  clean->on_connected = [c = clean.get()] {
    c->write_synthetic(kib(4));
    c->close();
  };
  clean->on_error = [&](ConnectionError e) { clean_error = e; };
  clean->on_closed = [&] { clean_closed = true; };
  net.sim.run(net.sim.now() + 10_s);
  EXPECT_TRUE(clean_closed);
  EXPECT_EQ(clean_error, ConnectionError::kNone);
  EXPECT_EQ(clean->last_error(), ConnectionError::kNone);
}

TEST(TcpStackTest, StopListeningRefusesNewConnections) {
  TwoNodeNet net(lan());
  int accepted = 0;
  net.stack_b->listen(80, [&](Connection::Ptr) { ++accepted; });
  net.stack_a->connect(net.b, 80);
  net.sim.run(1_s);
  net.stack_b->stop_listening(80);
  net.stack_a->connect(net.b, 80);
  net.sim.run(1_s);
  EXPECT_EQ(accepted, 1);
}

TEST(TcpStackTest, AcceptedConnectionSeesCorrectPeer) {
  TwoNodeNet net(lan());
  Connection::Ptr server;
  net.stack_b->listen(80, [&](Connection::Ptr conn) { server = conn; });
  auto client = net.stack_a->connect(net.b, 80);
  net.sim.run(1_s);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->remote_node(), net.a);
  EXPECT_EQ(server->local_port(), 80);
  EXPECT_EQ(server->remote_port(), client->local_port());
}

TEST(TcpStackTest, ListenerOptionsApplyToAcceptedSockets) {
  TwoNodeNet net(lan());
  Connection::Ptr server;
  net.stack_b->listen(80, [&](Connection::Ptr conn) { server = conn; },
                      TcpOptions{}.with_buffers(mib(2)));
  net.stack_a->connect(net.b, 80);
  net.sim.run(1_s);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->options().recv_buffer_bytes, mib(2));
}

TEST(TcpStackTest, BidirectionalTransferOnOneConnection) {
  TwoNodeNet net(lan());
  std::uint64_t server_got = 0;
  std::uint64_t client_got = 0;
  // Payloads fit within the default 64 KB socket buffers so neither side
  // needs a writable-pump; the point is both directions of one connection.
  net.stack_b->listen(80, [&](Connection::Ptr conn) {
    conn->write_synthetic(60'000);
    conn->on_readable = [&, c = conn.get()] {
      server_got += c->read(c->readable_bytes()).n;
    };
  });
  auto client = net.stack_a->connect(net.b, 80);
  client->on_connected = [c = client.get()] { c->write_synthetic(30'000); };
  client->on_readable = [&, c = client.get()] {
    client_got += c->read(c->readable_bytes()).n;
  };
  net.sim.run(10_s);
  EXPECT_EQ(server_got, 30'000u);
  EXPECT_EQ(client_got, 60'000u);
}

TEST(TcpStackTest, ManySequentialConnectionsAreReaped) {
  TwoNodeNet net(lan());
  int completed = 0;
  net.stack_b->listen(80, [&](Connection::Ptr conn) {
    conn->on_readable = [c = conn.get()] { c->read(c->readable_bytes()); };
    conn->on_eof = [&, c = conn.get()] {
      ++completed;
      c->close();
    };
  });
  for (int i = 0; i < 20; ++i) {
    auto c = net.stack_a->connect(net.b, 80);
    c->on_connected = [cp = c.get()] {
      cp->write_synthetic(10'000);
      cp->close();
    };
    net.sim.run(net.sim.now() + 5_s);
  }
  EXPECT_EQ(completed, 20);
  // TIME_WAIT linger is short; everything should be reaped by now.
  EXPECT_EQ(net.stack_a->open_connections(), 0u);
  EXPECT_EQ(net.stack_b->open_connections(), 0u);
}

TEST(TcpStackTest, ConcurrentConnectionsDoNotInterfere) {
  TwoNodeNet net(lan());
  constexpr int kConns = 10;
  std::uint64_t per_conn[kConns] = {};
  int done = 0;
  int next_index = 0;
  net.stack_b->listen(80, [&](Connection::Ptr conn) {
    const int index = next_index++;
    conn->on_readable = [&, index, c = conn.get()] {
      per_conn[index] += c->read(c->readable_bytes()).n;
    };
    conn->on_eof = [&, index, c = conn.get()] {
      per_conn[index] += c->read(c->readable_bytes()).n;
      ++done;
      c->close();
    };
  });
  for (int i = 0; i < kConns; ++i) {
    auto c = net.stack_a->connect(net.b, 80);
    const std::uint64_t bytes = 10'000 + 1'000 * static_cast<std::uint64_t>(i);
    c->on_connected = [cp = c.get(), bytes] {
      cp->write_synthetic(bytes);
      cp->close();
    };
  }
  net.sim.run(30_s);
  EXPECT_EQ(done, kConns);
  // Sizes are distinct per connection; totals must match exactly.
  std::uint64_t total = 0;
  for (const auto n : per_conn) {
    total += n;
  }
  EXPECT_EQ(total, 10u * 10'000 + 1'000 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9));
}

}  // namespace
}  // namespace lsl::tcp
