#include <gtest/gtest.h>

#include <set>

#include "testbed/abilene_paths.hpp"
#include "testbed/grid.hpp"
#include "testbed/sweep.hpp"
#include "util/stats.hpp"

namespace lsl::testbed {
namespace {

using namespace lsl::time_literals;

TEST(SyntheticGridTest, PlanetlabPoolShape) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 42);
  // ~70 sites with 1-3 hosts each: the paper's pool had 142 machines.
  EXPECT_GE(grid.size(), 70u);
  EXPECT_LE(grid.size(), 210u);
  std::set<std::string> sites;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    sites.insert(grid.host(i).site);
  }
  EXPECT_EQ(sites.size(), 70u);
  EXPECT_TRUE(grid.core_hosts().empty());
}

TEST(SyntheticGridTest, DeterministicForSeed) {
  const auto a = SyntheticGrid::planetlab(PlanetLabConfig{}, 7);
  const auto b = SyntheticGrid::planetlab(PlanetLabConfig{}, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.host(i).name, b.host(i).name);
    EXPECT_DOUBLE_EQ(a.host(i).access.bits_per_second(),
                     b.host(i).access.bits_per_second());
  }
  EXPECT_EQ(a.rtt(0, a.size() - 1), b.rtt(0, b.size() - 1));
}

TEST(SyntheticGridTest, RttSymmetricAndBounded) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 3);
  for (std::size_t i = 0; i < grid.size(); i += 7) {
    for (std::size_t j = 0; j < grid.size(); j += 11) {
      if (i == j) {
        continue;
      }
      EXPECT_EQ(grid.rtt(i, j), grid.rtt(j, i));
      EXPECT_GE(grid.rtt(i, j), 1_ms);
      EXPECT_LE(grid.rtt(i, j), 250_ms);
    }
  }
}

TEST(SyntheticGridTest, SameSiteIsLanLike) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 11);
  // Find a site with two hosts.
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    if (grid.host(i).site == grid.host(i + 1).site) {
      EXPECT_EQ(grid.rtt(i, i + 1), 1_ms);
      EXPECT_GE(grid.base_path_bw(i, i + 1).megabits_per_second(), 500.0);
      return;
    }
  }
  GTEST_SKIP() << "no two-host site in this seed";
}

TEST(SyntheticGridTest, ProbeBwRespectsCapsAndWindow) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 13);
  for (std::size_t i = 0; i < grid.size(); i += 5) {
    for (std::size_t j = 1; j < grid.size(); j += 9) {
      if (i == j || grid.host(i).site == grid.host(j).site) {
        continue;
      }
      const double probe = grid.probe_bw(i, j).megabits_per_second();
      EXPECT_LE(probe,
                grid.host(i).host_cap.megabits_per_second() + 1e-9);
      EXPECT_LE(probe,
                grid.host(j).host_cap.megabits_per_second() + 1e-9);
      const double window_ceiling =
          static_cast<double>(
              std::min(grid.host(i).tcp_buffer, grid.host(j).tcp_buffer)) *
          8.0 / grid.rtt(i, j).to_seconds() / 1e6;
      EXPECT_LE(probe, window_ceiling + 1e-9);
    }
  }
}

TEST(SyntheticGridTest, AbileneCoreShape) {
  const auto grid = SyntheticGrid::abilene_core(AbileneCoreConfig{}, 5);
  EXPECT_EQ(grid.size(), 21u);  // 10 universities + 11 POPs
  EXPECT_EQ(grid.core_hosts().size(), 11u);
  for (const std::size_t core : grid.core_hosts()) {
    EXPECT_TRUE(grid.host(core).core);
    EXPECT_EQ(grid.host(core).tcp_buffer, 8 * kMiB);
  }
  EXPECT_EQ(grid.host(0).tcp_buffer, 64 * kKiB);
}

TEST(SyntheticGridTest, DirectParamsRateLimitKicksInPastThreshold) {
  PlanetLabConfig config;
  config.rate_limited_fraction = 1.0;  // everyone limited
  const auto grid = SyntheticGrid::planetlab(config, 17);
  Rng trial(1);
  const auto small = grid.direct_params(0, grid.size() - 1, mib(1), trial);
  Rng trial2(1);
  const auto big = grid.direct_params(0, grid.size() - 1, mib(64), trial2);
  EXPECT_LE(big.bottleneck.megabits_per_second(),
            config.noise.rate_limit.megabits_per_second() + 1e-9);
  EXPECT_GE(small.bottleneck.megabits_per_second(),
            big.bottleneck.megabits_per_second());
}

TEST(SyntheticGridTest, RelayParamsMatchPathStructure) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 23);
  Rng trial(9);
  const std::vector<std::size_t> path{0, 5, 10};
  const auto hops = grid.relay_params(path, mib(4), trial);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].rtt, grid.rtt(0, 5));
  EXPECT_EQ(hops[1].rtt, grid.rtt(5, 10));
}

TEST(SweepTest, ProducesPlausibleSpeedupDistribution) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 99);
  SweepConfig config;
  config.max_size_exp = 3;  // 1, 2, 4 MB: keep the unit test quick
  config.iterations = 3;
  config.max_cases = 60;
  const auto result = run_speedup_sweep(grid, config, 4242);

  EXPECT_GT(result.fraction_scheduled, 0.02);
  EXPECT_LT(result.fraction_scheduled, 0.9);
  EXPECT_GT(result.scheduled_cases, 10u);
  EXPECT_EQ(result.speedups_by_size.size(), 3u);

  const auto all = result.all_speedups();
  ASSERT_FALSE(all.empty());
  // The paper's central finding: gains on average, losses in a sizable
  // minority of cases.
  int wins = 0;
  int losses = 0;
  for (const double s : all) {
    EXPECT_GT(s, 0.01);
    EXPECT_LT(s, 50.0);
    (s > 1.0 ? wins : losses) += 1;
  }
  EXPECT_GT(wins, 0);
  EXPECT_GT(losses, 0);
}

TEST(SweepTest, DeterministicForSeed) {
  const auto grid = SyntheticGrid::planetlab(PlanetLabConfig{}, 55);
  SweepConfig config;
  config.max_size_exp = 2;
  config.iterations = 2;
  config.max_cases = 20;
  const auto a = run_speedup_sweep(grid, config, 77);
  const auto b = run_speedup_sweep(grid, config, 77);
  ASSERT_EQ(a.all_speedups().size(), b.all_speedups().size());
  EXPECT_EQ(a.all_speedups(), b.all_speedups());
}

TEST(SweepTest, ExplicitSizesRespected) {
  const auto grid = SyntheticGrid::abilene_core(AbileneCoreConfig{}, 9);
  SweepConfig config;
  config.sizes = {mib(16), mib(128)};
  config.iterations = 2;
  config.max_cases = 20;
  // Endpoints: the universities only (hosts 0..9).
  for (std::size_t u = 0; u < 10; ++u) {
    config.endpoints.push_back(u);
  }
  const auto result = run_speedup_sweep(grid, config, 31);
  EXPECT_EQ(result.speedups_by_size.size(), 2u);
  EXPECT_TRUE(result.speedups_by_size.contains(mib(16)));
  EXPECT_TRUE(result.speedups_by_size.contains(mib(128)));
}

TEST(PathScenarioTest, RttsMatchPaperTable) {
  const auto uiuc = ucsb_uiuc_via_denver();
  EXPECT_EQ((uiuc.src_depot_delay * 2).to_milliseconds(), 46.0);
  EXPECT_EQ((uiuc.depot_dst_delay * 2).to_milliseconds(), 45.0);
  EXPECT_EQ((uiuc.direct_delay * 2).to_milliseconds(), 70.0);
  const auto uf = ucsb_uf_via_houston();
  EXPECT_EQ((uf.src_depot_delay * 2).to_milliseconds(), 68.0);
  EXPECT_EQ((uf.depot_dst_delay * 2).to_milliseconds(), 34.0);
  EXPECT_EQ((uf.direct_delay * 2).to_milliseconds(), 87.0);
}

TEST(PathTestbedTest, DirectAndRelayedTransfersComplete) {
  PathTestbed bed(ucsb_uf_via_houston(), 8);
  const auto direct = bed.run(/*via_depot=*/false, mib(2));
  EXPECT_TRUE(direct.completed);
  EXPECT_EQ(direct.bytes, mib(2));
  const auto relayed = bed.run(/*via_depot=*/true, mib(2));
  EXPECT_TRUE(relayed.completed);
  EXPECT_EQ(relayed.bytes, mib(2));
  EXPECT_EQ(bed.harness().depot(bed.depot()).stats().sessions_relayed, 1u);
}

TEST(PathTestbedTest, LslOutperformsDirectAtSteadyState) {
  // The headline claim on the UIUC path configuration, packet level.
  // Individual runs are noisy (stochastic loss placement), so compare the
  // averages of several seeds, exactly as the paper averages 10 runs.
  OnlineStats direct_bw;
  OnlineStats lsl_bw;
  for (std::uint64_t seed = 12; seed < 17; ++seed) {
    PathTestbed direct_bed(ucsb_uiuc_via_denver(), seed);
    const auto direct = direct_bed.run(false, mib(32));
    ASSERT_TRUE(direct.completed);
    direct_bw.add(direct.goodput.megabits_per_second());
    PathTestbed lsl_bed(ucsb_uiuc_via_denver(), seed);
    const auto lsl = lsl_bed.run(true, mib(32));
    ASSERT_TRUE(lsl.completed);
    lsl_bw.add(lsl.goodput.megabits_per_second());
  }
  EXPECT_GT(lsl_bw.mean(), direct_bw.mean());
}

}  // namespace
}  // namespace lsl::testbed
