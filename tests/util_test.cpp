#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace lsl {
namespace {

using namespace lsl::time_literals;

TEST(SimTimeTest, ConstructorsAndAccessors) {
  EXPECT_EQ(SimTime::seconds(2).ns(), 2'000'000'000);
  EXPECT_EQ(SimTime::milliseconds(5).ns(), 5'000'000);
  EXPECT_EQ(SimTime::microseconds(7).ns(), 7'000);
  EXPECT_EQ(SimTime::nanoseconds(9).ns(), 9);
  EXPECT_DOUBLE_EQ(SimTime::seconds(3).to_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(46).to_milliseconds(), 46.0);
}

TEST(SimTimeTest, Literals) {
  EXPECT_EQ(3_s, SimTime::seconds(3));
  EXPECT_EQ(70_ms, SimTime::milliseconds(70));
  EXPECT_EQ(12_us, SimTime::microseconds(12));
  EXPECT_EQ(34_ns, SimTime::nanoseconds(34));
}

TEST(SimTimeTest, Arithmetic) {
  EXPECT_EQ(1_s + 500_ms, SimTime::milliseconds(1500));
  EXPECT_EQ(1_s - 250_ms, SimTime::milliseconds(750));
  EXPECT_EQ(10_ms * 3, 30_ms);
  EXPECT_EQ(100_ms / 4, 25_ms);
  EXPECT_EQ(1_s / 250_ms, 4);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(10_ms, 11_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(SimTime::zero(), 0_ns);
}

TEST(SimTimeTest, FromSecondsRounds) {
  EXPECT_EQ(SimTime::from_seconds(0.5).ns(), 500'000'000);
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
}

TEST(SimTimeTest, StringRendering) {
  EXPECT_EQ((2_s).str(), "2.000s");
  EXPECT_EQ((46_ms).str(), "46.000ms");
}

TEST(BandwidthTest, ConstructorsAndConversions) {
  EXPECT_DOUBLE_EQ(Bandwidth::mbps(100).bits_per_second(), 100e6);
  EXPECT_DOUBLE_EQ(Bandwidth::gbps(1).megabits_per_second(), 1000.0);
  EXPECT_DOUBLE_EQ(Bandwidth::mbps(8).bytes_per_second(), 1e6);
}

TEST(BandwidthTest, TransmitTime) {
  // 1500 bytes at 100 Mbit/s = 120 microseconds.
  EXPECT_EQ(Bandwidth::mbps(100).transmit_time(1500), 120_us);
}

TEST(BandwidthTest, ThroughputOf) {
  const Bandwidth bw = throughput_of(mib(1), 1_s);
  EXPECT_NEAR(bw.megabits_per_second(), 8.389, 0.01);
  EXPECT_DOUBLE_EQ(throughput_of(100, SimTime::zero()).bits_per_second(), 0.0);
}

TEST(UnitsTest, ByteFormatting) {
  EXPECT_EQ(format_bytes(mib(64)), "64MB");
  EXPECT_EQ(format_bytes(kib(512)), "512KB");
  EXPECT_EQ(format_bytes(100), "100B");
}

TEST(RngTest, Determinism) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 6);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 6);
    saw_lo |= v == 0;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(rng.normal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(5);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
  // Forking does not perturb the parent stream.
  Rng parent_again(5);
  (void)parent_again.fork(1);
  Rng p_copy(5);
  EXPECT_EQ(parent_again.next_u64(), p_copy.next_u64());
}

TEST(RngTest, HashStable) {
  EXPECT_EQ(Rng::hash("abilene"), Rng::hash("abilene"));
  EXPECT_NE(Rng::hash("ucsb"), Rng::hash("uiuc"));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StatsTest, OnlineStatsBasics) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, PercentileInterpolation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 1.75);
}

TEST(StatsTest, PercentileSingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 42.0);
}

TEST(StatsTest, BoxStats) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) {
    xs.push_back(static_cast<double>(i));
  }
  const BoxStats b = BoxStats::of(xs);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.q25, 26.0);
  EXPECT_DOUBLE_EQ(b.q75, 76.0);
  EXPECT_DOUBLE_EQ(b.max, 101.0);
  EXPECT_EQ(b.count, 101u);
}

TEST(StatsTest, PercentileRankBelow) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i < 40 ? 0.9 : 1.1);  // 40% below 1.0
  }
  EXPECT_DOUBLE_EQ(percentile_rank_below(xs, 1.0), 40.0);
}

TEST(TableTest, AlignedPrinting) {
  Table t({"size", "speedup"});
  t.add_row({"1MB", "1.05"});
  t.add_row({"64MB", "1.09"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("size"), std::string::npos);
  EXPECT_NE(out.find("64MB"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(FigureDataTest, SeriesOutput) {
  FigureData fig("Fig 2", "size_mb", {"direct", "lsl"});
  fig.add_point(1.0, {4.2, 5.3});
  fig.add_point(64.0, {10.1, 18.2});
  std::ostringstream os;
  fig.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# Fig 2"), std::string::npos);
  EXPECT_NE(out.find("size_mb,direct,lsl"), std::string::npos);
  EXPECT_NE(out.find("64.000000,10.100000,18.200000"), std::string::npos);
}

}  // namespace
}  // namespace lsl
