// lslsim: run LSL transfer scenarios from a text description.
//
//   lslsim <scenario-file> [--seed N] [--sweep] [--jobs N]
//          [--metrics=<path>] [--trace=<path>] [--profile]
//   lslsim --pool-size N [--seed N] [--jobs N] [--metrics=<path>]
//
// Prints one result row per transfer. See src/exp/scenario.hpp for the file
// format, scenarios/ for ready-made examples, and docs/observability.md for
// the metrics/trace output formats. With --pool-size (or a scenario `pool`
// directive) it instead runs a synthetic PlanetLab-style speedup sweep --
// the control-plane scaling path for 1000+ host pools.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/scenario.hpp"
#include "fault/injector.hpp"
#include "mc/fuzzer.hpp"
#include "lsl/depot.hpp"
#include "lsl/recovery.hpp"
#include "nws/monitor.hpp"
#include "obs/explain.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sched/route_advisor.hpp"
#include "sched/scheduler.hpp"
#include "tcp/connection.hpp"
#include "testbed/grid.hpp"
#include "testbed/sweep.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: lslsim <scenario-file> [--seed N] [--sweep] [--jobs N]\n"
               "              [--fidelity=packet|flow]\n"
               "              [--cca=reno|newreno|cubic|bbr]\n"
               "              [--metrics=<path>] [--metrics-format=json|prom]\n"
               "              [--trace=<path>] [--spans=<path>] [--profile]\n"
               "              [--explain[=SESSION]]\n"
               "       lslsim --pool-size N [--seed N] [--jobs N]\n"
               "              [--fidelity=packet|flow] [--metrics=<path>]\n"
               "              [--route-service [--shards=N]]\n"
               "  Runs the transfers described in the scenario file over the\n"
               "  packet-level simulator and prints a result row for each.\n"
               "  --sweep re-runs every transfer at doubling sizes from 1 MiB\n"
               "  up to its declared size (a Figure 2-style curve).\n"
               "  --jobs N runs the sweep's independent points on N worker\n"
               "  threads (output is bitwise identical for any N; 0 = one\n"
               "  worker per hardware thread). Ignored without --sweep: the\n"
               "  transfers of a single run share one simulation.\n"
               "  --fidelity=flow carries transfer payload on the fluid\n"
               "  (flow-level) engine instead of simulating every packet --\n"
               "  same sessions, depots, recovery, and rerouting, far fewer\n"
               "  events (see docs/flow_fidelity.md). Default: packet, or\n"
               "  the scenario's own `fidelity` directive. In pool mode the\n"
               "  sweep normally uses the analytic model; --fidelity=flow\n"
               "  or =packet runs each measurement on the simulator at that\n"
               "  fidelity instead (much slower; small pools only).\n"
               "  --cca selects the congestion-control algorithm for every\n"
               "  transfer and depot relay, overriding the scenario's own\n"
               "  `cca` directive. Default: newreno.\n"
               "  --metrics=<path> writes a snapshot of every metric;\n"
               "  --metrics-format=prom selects the Prometheus text format\n"
               "  instead of JSON.\n"
               "  --trace=<path> writes Chrome trace-event JSON (load it in\n"
               "  Perfetto or chrome://tracing).\n"
               "  --spans=<path> writes the causal span stream as JSON.\n"
               "  --explain prints a per-transfer wall-time breakdown\n"
               "  (streaming / connect / stall / backoff / probe / handover\n"
               "  / retransmit-dominated); --explain=SESSION limits it to\n"
               "  one session hash (hex). Identical for any --jobs value.\n"
               "  --pool-size N skips the packet simulator entirely and runs\n"
               "  the section 4.2 speedup sweep over a synthetic PlanetLab\n"
               "  pool of ~N hosts (fixed topology seed; --seed varies the\n"
               "  measurement sweep). Equivalent to a scenario file holding\n"
               "  just `pool size=N`; a scenario's pool directive can also\n"
               "  set epsilon/iterations/cases/sizes/drift.\n"
               "  --route-service discovers the pool sweep's routes through\n"
               "  the sharded, epoch-versioned RouteService snapshot instead\n"
               "  of the direct scheduler; --shards=N picks the shard count\n"
               "  (default 1, which reproduces the direct scheduler's output\n"
               "  bit for bit -- the CI determinism smoke pins this).\n"
               "  --profile prints the simulation kernel's self-profile.\n"
               "  --verify[=RUNS] model-checks the scenario instead of\n"
               "  running it once: DFS over event interleavings (fault vs\n"
               "  timer orderings, probe-reply timing, reroute decisions)\n"
               "  asserting the protocol invariants; nonzero exit and a\n"
               "  counterexample trace file on violation. --verify-depth=N,\n"
               "  --verify-slack=US (reorder events within US microseconds),\n"
               "  --verify-perturb=S1,S2,... (also try each fault shifted by\n"
               "  those seconds) widen the search; --verify-trace=<path>\n"
               "  sets the artifact path (default lslverify.trace).\n"
               "  --verify-replay=P1,P2,... re-executes one recorded choice\n"
               "  trace (a counterexample's replay picks) deterministically.\n"
               "  --fuzz-faults N runs the scenario under N random fault\n"
               "  schedules (seeds seed..seed+N-1) checking the same\n"
               "  invariants; nonzero exit lists the violating seeds.\n"
               "  Scenarios may inject faults (fault/churn directives) and\n"
               "  enable session recovery and adaptive rerouting; the\n"
               "  status column then reports ok / recovered(xN) /\n"
               "  rerouted(xN) / FAILED per transfer. Exit status is\n"
               "  nonzero when any session fails or a connection leaks;\n"
               "  an always-on flight recorder then dumps a post-mortem of\n"
               "  each failed session's recent span events to stderr.\n"
               "  LSL_LOG=debug enables protocol traces; LSL_METRICS=off\n"
               "  disables the built-in instrumentation.\n");
}

/// Touch every subsystem's instrument bundle so the JSON snapshot carries
/// the full tcp/lsl/sched/nws namespace even when a scenario exercises only
/// part of the stack (registration is lazy otherwise).
void preregister_metrics() {
  (void)lsl::tcp::TcpMetrics::get();
  (void)lsl::session::DepotMetrics::get();
  (void)lsl::session::RecoveryMetrics::get();
  (void)lsl::sched::SchedMetrics::get();
  (void)lsl::sched::AdvisorMetrics::get();
  (void)lsl::nws::NwsMetrics::get();
  (void)lsl::fault::FaultMetrics::get();
}

/// Per-transfer status cell: ok / recovered(xN) / rerouted(xN) / FAILED.
/// A transfer that both recovered and took planned handovers reports both.
std::string status_of(const lsl::exp::SimHarness::TransferOutcome& outcome) {
  if (!outcome.completed) {
    return "FAILED";
  }
  std::string status;
  if (outcome.recovered) {
    status = "recovered(x" + std::to_string(outcome.retries) + ")";
  }
  if (outcome.reroutes > 0) {
    if (!status.empty()) {
      status += "+";
    }
    status += "rerouted(x" + std::to_string(outcome.reroutes) + ")";
  }
  return status.empty() ? "ok" : status;
}

}  // namespace

int main(int argc, char** argv) {
  lsl::init_log_from_env();
  lsl::obs::init_metrics_from_env();
  const char* path = nullptr;
  std::uint64_t seed = 1;
  bool sweep = false;
  bool profile = false;
  std::size_t jobs = 1;
  std::size_t pool_size = 0;
  bool route_service = false;
  std::size_t route_shards = 1;
  const char* fidelity_arg = nullptr;
  const char* cca_arg = nullptr;
  const char* metrics_path = nullptr;
  bool metrics_prom = false;
  const char* trace_path = nullptr;
  const char* spans_path = nullptr;
  bool explain = false;
  std::uint64_t explain_session = 0;
  bool verify = false;
  std::uint64_t verify_runs = 48;
  std::size_t verify_depth = 24;
  std::uint64_t verify_slack_us = 0;
  const char* verify_perturb = nullptr;
  const char* verify_trace_path = "lslverify.trace";
  const char* verify_replay = nullptr;
  std::uint64_t fuzz_runs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--pool-size") == 0 && i + 1 < argc) {
      pool_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--route-service") == 0) {
      route_service = true;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      route_service = true;
      route_shards = std::strtoull(argv[i] + 9, nullptr, 10);
      if (route_shards == 0) {
        std::fprintf(stderr, "lslsim: --shards needs a positive count\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--fidelity=", 11) == 0) {
      fidelity_arg = argv[i] + 11;
      if (std::strcmp(fidelity_arg, "packet") != 0 &&
          std::strcmp(fidelity_arg, "flow") != 0) {
        std::fprintf(stderr, "lslsim: unknown fidelity '%s' (packet|flow)\n",
                     fidelity_arg);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--cca=", 6) == 0) {
      cca_arg = argv[i] + 6;
      lsl::flow::Cca parsed;
      if (!lsl::flow::parse_cca(cca_arg, parsed)) {
        std::fprintf(stderr,
                     "lslsim: unknown cca '%s' (reno|newreno|cubic|bbr)\n",
                     cca_arg);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--metrics-format=", 17) == 0) {
      const char* format = argv[i] + 17;
      if (std::strcmp(format, "prom") == 0) {
        metrics_prom = true;
      } else if (std::strcmp(format, "json") != 0) {
        std::fprintf(stderr, "lslsim: unknown metrics format '%s'\n", format);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--spans=", 8) == 0) {
      spans_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strncmp(argv[i], "--explain=", 10) == 0) {
      explain = true;
      explain_session = std::strtoull(argv[i] + 10, nullptr, 16);
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strncmp(argv[i], "--verify=", 9) == 0) {
      verify = true;
      verify_runs = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--verify-depth=", 15) == 0) {
      verify_depth = std::strtoull(argv[i] + 15, nullptr, 10);
    } else if (std::strncmp(argv[i], "--verify-slack=", 15) == 0) {
      verify_slack_us = std::strtoull(argv[i] + 15, nullptr, 10);
    } else if (std::strncmp(argv[i], "--verify-perturb=", 17) == 0) {
      verify_perturb = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--verify-trace=", 15) == 0) {
      verify_trace_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--verify-replay=", 16) == 0) {
      verify_replay = argv[i] + 16;
    } else if (std::strcmp(argv[i], "--fuzz-faults") == 0 && i + 1 < argc) {
      fuzz_runs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      usage();
      return 2;
    }
  }
  if (path == nullptr && pool_size == 0) {
    usage();
    return 2;
  }

  if (metrics_path != nullptr) {
    preregister_metrics();
  }
  lsl::obs::TraceRecorder recorder;
  if (trace_path != nullptr) {
    lsl::obs::set_tracer(&recorder);
  }
  // Span recording is always on: a bounded per-session flight recorder in
  // normal runs (cheap; feeds the failure post-mortem), the full unbounded
  // log when --explain or --spans needs complete coverage.
  const bool full_spans = explain || spans_path != nullptr;
  lsl::obs::SpanRecorder span_recorder(full_spans ? 0 : 64);
  lsl::obs::set_spans(&span_recorder);

  lsl::exp::Scenario scenario;
  if (path != nullptr) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "lslsim: cannot open %s\n", path);
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();

    auto parsed = lsl::exp::parse_scenario(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "lslsim: %s: %s\n", path, parsed.error.c_str());
      return 1;
    }
    scenario = std::move(*parsed.scenario);
  }
  if (pool_size > 0) {
    if (!scenario.pool.has_value()) {
      scenario.pool.emplace();
    }
    scenario.pool->size = pool_size;
  }
  if (fidelity_arg != nullptr) {
    scenario.fidelity = std::strcmp(fidelity_arg, "flow") == 0
                            ? lsl::exp::Fidelity::kFlow
                            : lsl::exp::Fidelity::kPacket;
  }
  if (cca_arg != nullptr) {
    lsl::flow::Cca cca = lsl::flow::Cca::kNewReno;
    if (lsl::flow::parse_cca(cca_arg, cca)) {  // validated during getopt
      scenario.cca = cca;
    }
  }

  if (verify || verify_replay != nullptr || fuzz_runs > 0) {
    if (scenario.pool.has_value() || scenario.hosts.empty()) {
      std::fprintf(stderr,
                   "lslsim: --verify / --fuzz-faults need an explicit "
                   "host/link scenario\n");
      return 2;
    }
    // The model checker drives the kernel through many runs; silence the
    // outer flight recorder (counterexample replays install their own).
    lsl::obs::ScopedSpanRecorder quiet(nullptr);

    if (fuzz_runs > 0) {
      const auto result =
          lsl::mc::fuzz_fault_schedules(scenario, seed, fuzz_runs, {});
      std::printf("%s\n", result.str().c_str());
      return result.ok() ? 0 : 1;
    }

    if (verify_replay != nullptr) {
      std::vector<std::size_t> picks;
      for (const char* p = verify_replay; *p != '\0';) {
        char* end = nullptr;
        picks.push_back(std::strtoull(p, &end, 10));
        p = (end != nullptr && *end == ',') ? end + 1 : (end ? end : p + 1);
      }
      lsl::mc::ExplorerOptions opts;
      opts.slack = lsl::SimTime::microseconds(
          static_cast<std::int64_t>(verify_slack_us));
      lsl::mc::Explorer explorer(lsl::mc::scenario_fn(scenario, seed), opts);
      const auto run = explorer.replay(picks);
      std::printf("replay: %llu events, schedule hash %016llx, "
                  "%zu choice points, %zu violation(s)\n",
                  static_cast<unsigned long long>(run.events),
                  static_cast<unsigned long long>(run.schedule_hash),
                  run.trace.size(), run.violations.size());
      for (const std::string& v : run.violations) {
        std::printf("  violation: %s\n", v.c_str());
      }
      return run.violations.empty() ? 0 : 1;
    }

    lsl::mc::VerifyOptions vopts;
    vopts.explorer.max_runs = verify_runs;
    vopts.explorer.max_depth = verify_depth;
    vopts.explorer.slack = lsl::SimTime::microseconds(
        static_cast<std::int64_t>(verify_slack_us));
    if (verify_perturb != nullptr) {
      for (const char* p = verify_perturb; *p != '\0';) {
        char* end = nullptr;
        vopts.perturb_offsets.push_back(
            lsl::SimTime::from_seconds(std::strtod(p, &end)));
        p = (end != nullptr && *end == ',') ? end + 1 : (end ? end : p + 1);
      }
    }
    const auto result = lsl::mc::verify_scenario(scenario, seed, vopts);
    std::printf("%s\n", result.stats.str().c_str());
    if (result.ok()) {
      std::printf("verification passed: 0 violations over %zu variant(s)\n",
                  result.variant_labels.size());
      return 0;
    }
    std::ofstream trace_out(verify_trace_path);
    trace_out << "lslsim --verify counterexample trace\n"
              << "scenario: " << (path != nullptr ? path : "<none>")
              << "\nseed: " << seed << "\n"
              << result.stats.str() << "\n\n";
    for (const auto& vce : result.counterexamples) {
      const std::string& label = result.variant_labels[vce.variant];
      trace_out << "=== counterexample (variant " << vce.variant << ": "
                << label << ") ===\n"
                << "replay: --verify-replay="
                << (vce.ce.picks_csv().empty() ? "<default schedule>"
                                               : vce.ce.picks_csv())
                << "\n"
                << vce.ce.str() << "\n"
                << vce.ce.post_mortem << "\n";
      std::fprintf(stderr,
                   "lslsim: invariant violation (variant %zu: %s):\n",
                   vce.variant, label.c_str());
      for (const std::string& v : vce.ce.run.violations) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
    }
    std::fprintf(stderr,
                 "lslsim: verification FAILED: %zu counterexample(s); "
                 "trace written to %s\n",
                 result.counterexamples.size(), verify_trace_path);
    return 1;
  }

  if (!scenario.pool.has_value()) {
    std::printf("%zu hosts, %zu links, %zu transfers (seed %llu)\n\n",
                scenario.hosts.size(), scenario.links.size(),
                scenario.transfers.size(),
                static_cast<unsigned long long>(seed));
  }

  // Kernel self-measurement: wall-clock sampling is enabled when the profile
  // is wanted directly (--profile) or indirectly (sim.kernel.* metrics).
  const bool want_profile = profile || metrics_path != nullptr;
  lsl::sim::KernelProfile total_profile;

  // Everything after the runs: kernel profile on stdout, metrics snapshot
  // and Chrome trace to their files.
  const auto finish = [&](bool ok) {
    if (explain) {
      const auto breakdowns =
          lsl::obs::account_spans(span_recorder.snapshot());
      std::printf("\n%s",
                  lsl::obs::render_breakdowns(breakdowns, explain_session)
                      .c_str());
    }
    if (profile) {
      std::printf("\n%s", total_profile.str().c_str());
    }
    if (metrics_path != nullptr) {
      total_profile.export_metrics(lsl::obs::Registry::global());
      bool wrote = false;
      if (metrics_prom) {
        std::ofstream out(metrics_path);
        if (out) {
          out << lsl::obs::Registry::global().to_prom();
          wrote = out.good();
        }
      } else {
        wrote = lsl::obs::Registry::global().write_json(metrics_path);
      }
      if (!wrote) {
        std::fprintf(stderr, "lslsim: cannot write %s\n", metrics_path);
        ok = false;
      }
    }
    if (trace_path != nullptr) {
      if (!recorder.write_json(trace_path)) {
        std::fprintf(stderr, "lslsim: cannot write %s\n", trace_path);
        ok = false;
      }
      lsl::obs::set_tracer(nullptr);
    }
    if (spans_path != nullptr && !span_recorder.write_json(spans_path)) {
      std::fprintf(stderr, "lslsim: cannot write %s\n", spans_path);
      ok = false;
    }
    if (!ok) {
      // Flight-recorder post-mortem: dump the recent span history of every
      // session that failed or never finished, failover chain included.
      std::fprintf(stderr, "%s",
                   lsl::obs::post_mortem_all(span_recorder,
                                             /*only_troubled=*/true)
                       .c_str());
    }
    lsl::obs::set_spans(nullptr);
    return ok ? 0 : 1;
  };

  if (scenario.pool.has_value()) {
    // Synthetic-pool mode: no packet simulation, just the section 4.2
    // speedup sweep at whatever scale was asked for. The pool topology is
    // fixed (like fig09) so --seed varies only the measurement sweep and
    // results stay comparable across pool sizes.
    const auto& pool = *scenario.pool;
    const auto grid = lsl::testbed::SyntheticGrid::planetlab(
        lsl::testbed::scaled_planetlab_config(pool.size), 2004);
    lsl::testbed::SweepConfig sweep_config;
    sweep_config.epsilon = pool.epsilon < 0.0 ? grid.noise().sweep_epsilon
                                              : pool.epsilon;
    sweep_config.iterations = pool.iterations;
    sweep_config.max_cases = pool.max_cases;
    sweep_config.max_size_exp = pool.max_size_exp;
    sweep_config.matrix_drift_sigma = pool.drift_sigma;
    sweep_config.jobs = jobs;
    if (route_service) {
      sweep_config.route_shards = route_shards;
      // stderr only: the stdout sweep report stays bitwise identical to the
      // direct-scheduler path at one shard (the CI determinism smoke).
      std::fprintf(stderr, "lslsim: routing via RouteService (%zu shard%s)\n",
                   route_shards, route_shards == 1 ? "" : "s");
    }
    // Unset: the analytic flow model (the paper's sweep). A fidelity
    // directive or --fidelity flag runs every measurement on the simulator
    // at that fidelity instead.
    if (scenario.fidelity.has_value()) {
      sweep_config.fidelity = *scenario.fidelity == lsl::exp::Fidelity::kFlow
                                  ? lsl::testbed::SweepFidelity::kFlow
                                  : lsl::testbed::SweepFidelity::kPacket;
    }
    std::size_t sites = 0;
    {
      const auto names = grid.sites();
      std::vector<std::string> unique(names.begin(), names.end());
      std::sort(unique.begin(), unique.end());
      unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
      sites = unique.size();
    }
    const char* measurement =
        sweep_config.fidelity == lsl::testbed::SweepFidelity::kAnalytic
            ? "analytic"
            : (sweep_config.fidelity == lsl::testbed::SweepFidelity::kFlow
                   ? "flow"
                   : "packet");
    std::printf("pool sweep: %zu hosts over %zu sites (seed %llu, jobs %zu, "
                "%s measurement)\n\n",
                grid.size(), sites,
                static_cast<unsigned long long>(seed), jobs, measurement);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = lsl::testbed::run_speedup_sweep(grid, sweep_config,
                                                        seed);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    lsl::Table table({"size", "cases", "mean speedup", "gain"});
    for (const auto& [size, xs] : result.speedups_by_size) {
      const double mean =
          std::accumulate(xs.begin(), xs.end(), 0.0) /
          static_cast<double>(xs.empty() ? 1 : xs.size());
      table.add_row({lsl::format_bytes(size), std::to_string(xs.size()),
                     lsl::Table::num(mean, 3),
                     lsl::Table::num((mean - 1.0) * 100.0, 1) + "%"});
    }
    table.print(std::cout);
    std::printf("\nscheduled cases: %zu (%.1f%% of eligible pairs), "
                "mean depot hops %.2f\n",
                result.scheduled_cases, result.fraction_scheduled * 100.0,
                result.mean_path_hops);
    std::fprintf(stderr, "lslsim: pool sweep took %.2fs wall "
                 "(%zu measurements)\n",
                 wall_s, result.total_measurements);
    return finish(true);
  }

  if (sweep) {
    // Figure 2-style curves: re-run each declared transfer at doubling
    // sizes up to its declared size, one fresh simulation per point. Every
    // point is an independent trial (own simulation, seed fixed up front),
    // so the set runs through the parallel trial engine; the tables come
    // out identical for any --jobs value.
    struct Point {
      std::size_t transfer;
      std::uint64_t size;
    };
    std::vector<Point> points;
    for (std::size_t t = 0; t < scenario.transfers.size(); ++t) {
      for (std::uint64_t size = lsl::mib(1);
           size <= scenario.transfers[t].bytes; size *= 2) {
        points.push_back(Point{t, size});
      }
    }
    struct PointResult {
      lsl::exp::SimHarness::TransferOutcome outcome;
      std::size_t leaked = 0;
      lsl::sim::KernelProfile profile;
    };
    lsl::exp::TrialOptions trial_options;
    trial_options.jobs = jobs;
    const auto measured = lsl::exp::map_trials<PointResult>(
        points.size(), trial_options, [&](std::size_t trial) {
          auto point = scenario;
          point.transfers = {scenario.transfers[points[trial].transfer]};
          point.transfers[0].bytes = points[trial].size;
          PointResult out;
          const auto outcomes = lsl::exp::run_scenario(
              point, seed, lsl::SimTime::seconds(3600),
              want_profile ? &out.profile : nullptr, &out.leaked);
          out.outcome = outcomes.front().outcome;
          return out;
        });
    bool all_ok = true;
    std::size_t cursor = 0;
    for (std::size_t t = 0; t < scenario.transfers.size(); ++t) {
      const auto& base = scenario.transfers[t];
      std::printf("# %s -> %s%s\n", base.src.c_str(), base.dst.c_str(),
                  base.via.empty() ? "" : " (via depots)");
      lsl::Table table({"size", "time", "Mbit/s"});
      for (; cursor < points.size() && points[cursor].transfer == t;
           ++cursor) {
        const auto& pr = measured[cursor];
        if (want_profile) {
          total_profile.merge_from(pr.profile);
        }
        if (pr.leaked != 0) {
          std::fprintf(stderr, "lslsim: %zu connections leaked\n",
                       pr.leaked);
          all_ok = false;
        }
        all_ok &= pr.outcome.completed;
        table.add_row(
            {lsl::format_bytes(points[cursor].size),
             pr.outcome.completed ? pr.outcome.elapsed.str() : "FAILED",
             pr.outcome.completed
                 ? lsl::Table::num(
                       pr.outcome.goodput.megabits_per_second(), 2)
                 : "-"});
      }
      table.print(std::cout);
      std::printf("\n");
    }
    return finish(all_ok);
  }

  std::size_t leaked = 0;
  const auto outcomes = lsl::exp::run_scenario(
      scenario, seed, lsl::SimTime::seconds(3600),
      want_profile ? &total_profile : nullptr, &leaked);
  lsl::Table table({"src", "dst", "via", "size", "status", "time",
                    "Mbit/s"});
  bool all_ok = true;
  for (const auto& [transfer, outcome] : outcomes) {
    std::string via = "-";
    if (!transfer.via.empty()) {
      via.clear();
      for (std::size_t i = 0; i < transfer.via.size(); ++i) {
        via += (i > 0 ? "," : "") + transfer.via[i];
      }
    }
    all_ok &= outcome.completed;
    table.add_row({transfer.src, transfer.dst, via,
                   lsl::format_bytes(transfer.bytes), status_of(outcome),
                   outcome.completed ? outcome.elapsed.str() : "-",
                   outcome.completed
                       ? lsl::Table::num(
                             outcome.goodput.megabits_per_second(), 2)
                       : "-"});
  }
  table.print(std::cout);
  if (leaked != 0) {
    std::fprintf(stderr, "lslsim: %zu connections leaked\n", leaked);
    all_ok = false;
  }
  return finish(all_ok);
}
