// lslsim: run LSL transfer scenarios from a text description.
//
//   lslsim <scenario-file> [--seed N]
//
// Prints one result row per transfer. See src/exp/scenario.hpp for the file
// format and scenarios/ for ready-made examples.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "exp/scenario.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: lslsim <scenario-file> [--seed N] [--sweep]\n"
               "  Runs the transfers described in the scenario file over the\n"
               "  packet-level simulator and prints a result row for each.\n"
               "  --sweep re-runs every transfer at doubling sizes from 1 MiB\n"
               "  up to its declared size (a Figure 2-style curve).\n"
               "  LSL_LOG=debug enables protocol traces.\n");
}

}  // namespace

int main(int argc, char** argv) {
  lsl::init_log_from_env();
  const char* path = nullptr;
  std::uint64_t seed = 1;
  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      usage();
      return 2;
    }
  }
  if (path == nullptr) {
    usage();
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "lslsim: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();

  const auto parsed = lsl::exp::parse_scenario(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "lslsim: %s: %s\n", path, parsed.error.c_str());
    return 1;
  }
  const auto& scenario = *parsed.scenario;
  std::printf("%zu hosts, %zu links, %zu transfers (seed %llu)\n\n",
              scenario.hosts.size(), scenario.links.size(),
              scenario.transfers.size(),
              static_cast<unsigned long long>(seed));

  if (sweep) {
    // Figure 2-style curves: re-run each declared transfer at doubling
    // sizes up to its declared size, one fresh simulation per point.
    bool all_ok = true;
    for (std::size_t t = 0; t < scenario.transfers.size(); ++t) {
      const auto& base = scenario.transfers[t];
      std::printf("# %s -> %s%s\n", base.src.c_str(), base.dst.c_str(),
                  base.via.empty() ? "" : " (via depots)");
      lsl::Table table({"size", "time", "Mbit/s"});
      for (std::uint64_t size = lsl::mib(1); size <= base.bytes; size *= 2) {
        auto point = scenario;
        point.transfers = {base};
        point.transfers[0].bytes = size;
        const auto outcomes = lsl::exp::run_scenario(point, seed);
        const auto& outcome = outcomes.front().outcome;
        all_ok &= outcome.completed;
        table.add_row(
            {lsl::format_bytes(size),
             outcome.completed ? outcome.elapsed.str() : "FAILED",
             outcome.completed
                 ? lsl::Table::num(outcome.goodput.megabits_per_second(), 2)
                 : "-"});
      }
      table.print(std::cout);
      std::printf("\n");
    }
    return all_ok ? 0 : 1;
  }

  const auto outcomes = lsl::exp::run_scenario(scenario, seed);
  lsl::Table table({"src", "dst", "via", "size", "status", "time",
                    "Mbit/s"});
  bool all_ok = true;
  for (const auto& [transfer, outcome] : outcomes) {
    std::string via = "-";
    if (!transfer.via.empty()) {
      via.clear();
      for (std::size_t i = 0; i < transfer.via.size(); ++i) {
        via += (i > 0 ? "," : "") + transfer.via[i];
      }
    }
    all_ok &= outcome.completed;
    table.add_row({transfer.src, transfer.dst, via,
                   lsl::format_bytes(transfer.bytes),
                   outcome.completed ? "ok" : "FAILED",
                   outcome.completed ? outcome.elapsed.str() : "-",
                   outcome.completed
                       ? lsl::Table::num(
                             outcome.goodput.megabits_per_second(), 2)
                       : "-"});
  }
  table.print(std::cout);
  return all_ok ? 0 : 1;
}
